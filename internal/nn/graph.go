// Package nn is a small neural-network library built for this reproduction:
// a reverse-mode automatic-differentiation tape over dense matrices, the
// recurrent and attention layers RAPID and its baselines require, and the
// Adam optimizer. Everything is stdlib-only and single-goroutine per tape.
//
// The usual pattern is:
//
//	tape := nn.NewTape()
//	out := layer.Forward(tape, tape.Constant(x))
//	loss := tape.SigmoidBCE(out, targets)
//	tape.Backward(loss)        // accumulates into Param.Grad
//	optimizer.Step(params)     // consumes and zeroes the gradients
//
// Hot paths reuse one tape across many forward/backward passes:
//
//	tape := nn.NewTapeCap(model.TapeCapHint())
//	for _, inst := range instances {
//		tape.Reset() // recycles every buffer the previous pass created
//		...
//	}
//
// A Tape owns the Value and Grad buffers of every non-leaf node it creates;
// Reset returns them to a size-keyed free-list (mat.Pool), so a reused tape
// runs its steady state with almost no allocation. Matrices passed to
// Constant remain caller-owned and are never recycled. See DESIGN.md
// "Buffer ownership".
package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// opKind tags a node with the operation that produced it. Backward is a
// single switch over this tag — no per-node closures, so building a graph
// allocates nothing beyond the node arena and the pooled matrices.
type opKind uint8

const (
	opConst opKind = iota // leaf: caller-owned value, no gradient
	opUse                 // leaf: parameter; Grad aliases the Param's buffer
	opAdd
	opSub
	opMul
	opScale
	opMatMul
	opTranspose
	opAddRowB
	opConcatCols
	opConcatRows
	opSliceCols
	opSliceRows
	opSigmoid
	opTanh
	opReLU
	opSoftplus
	opSoftmaxRows
	opSum
	opMean
	opMeanRows
	opBCE
	opSoftmaxCE
	opLayerNorm
)

// Node is one value in the computation graph. Value is the forward result.
// Grad accumulates ∂loss/∂Value during Backward; it is allocated lazily the
// first time a consumer propagates into it, so nodes whose gradient nothing
// needs (constants, dead branches) never pay for a buffer. For parameter
// nodes Grad aliases the owning Param's gradient (or its GradShadow slot)
// so repeated passes accumulate into the same buffer.
type Node struct {
	Value *mat.Matrix
	Grad  *mat.Matrix

	op        opKind
	needsGrad bool
	a, b, c   *Node   // fixed-arity inputs
	ins       []*Node // variadic inputs (concat ops)
	i0, i1    int     // slice bounds / class target
	f0        float64 // scale factor / 1/n / log-sum-exp
	aux, aux2 *mat.Matrix
	ts        []float64 // BCE targets (caller-owned, read-only)
}

// tapeChunk is the node-arena chunk size. Chunks keep node pointers stable
// while the tape grows (a flat slice would move nodes on append).
const tapeChunk = 256

// Tape records nodes in topological (creation) order so Backward can run a
// single reverse sweep. A Tape is single-goroutine; concurrent training
// gives each worker its own tape. Create one per model and Reset it between
// passes — Reset recycles all tape-owned buffers, so steady-state forward/
// backward passes are nearly allocation-free.
type Tape struct {
	nodes  []*Node
	chunks [][]Node
	used   int
	refs   []*Node
	pool   mat.Pool
	grads  *GradShadow
}

// NewTape returns an empty tape with a default capacity hint.
func NewTape() *Tape { return NewTapeCap(tapeChunk) }

// NewTapeCap returns an empty tape pre-sized for about n nodes, eliminating
// arena and index growth during the first passes. Models that know their
// per-instance graph size (see rerank.TapeSized) pass their estimate here.
func NewTapeCap(n int) *Tape {
	if n < 1 {
		n = 1
	}
	const maxPrealloc = 1 << 16
	if n > maxPrealloc {
		n = maxPrealloc
	}
	t := &Tape{nodes: make([]*Node, 0, n)}
	for c := 0; c < (n+tapeChunk-1)/tapeChunk; c++ {
		t.chunks = append(t.chunks, make([]Node, tapeChunk))
	}
	return t
}

// NumNodes returns the number of nodes recorded since the last Reset.
// Models use it to calibrate NewTapeCap hints.
func (t *Tape) NumNodes() int { return len(t.nodes) }

// WithGrads redirects the gradients of every parameter subsequently
// introduced by Use to the given shadow instead of the Param's own buffer.
// Parallel trainers give each accumulation slot its own shadow so backward
// passes on different goroutines never touch shared memory; pass nil to
// restore direct accumulation. Must not be called between building a graph
// and running its Backward.
func (t *Tape) WithGrads(gs *GradShadow) { t.grads = gs }

// Reset clears the tape for a fresh forward pass, recycling every
// tape-owned Value/Grad/auxiliary buffer into the tape's free-list. All
// nodes and matrices obtained from this tape before the call — including
// node Values — are invalid afterwards; copy anything that must survive.
func (t *Tape) Reset() {
	for _, n := range t.nodes {
		switch n.op {
		case opConst, opUse:
			// Value (and for opUse, Grad) owned by the caller or Param.
		default:
			t.pool.Put(n.Value)
			t.pool.Put(n.Grad)
			t.pool.Put(n.aux)
			t.pool.Put(n.aux2)
		}
	}
	t.nodes = t.nodes[:0]
	t.refs = t.refs[:0]
	t.used = 0
}

// alloc carves a node out of the arena and records it on the tape.
func (t *Tape) alloc(v *mat.Matrix, op opKind, needs bool) *Node {
	ci, off := t.used/tapeChunk, t.used%tapeChunk
	if ci == len(t.chunks) {
		t.chunks = append(t.chunks, make([]Node, tapeChunk))
	}
	n := &t.chunks[ci][off]
	t.used++
	*n = Node{Value: v, op: op, needsGrad: needs}
	t.nodes = append(t.nodes, n)
	return n
}

// saveRefs copies a variadic input list into the tape's pointer arena so
// concat nodes don't retain caller slices. The full slice expression caps
// the result, keeping it immune to later arena growth.
func (t *Tape) saveRefs(ns []*Node) []*Node {
	start := len(t.refs)
	t.refs = append(t.refs, ns...)
	return t.refs[start:len(t.refs):len(t.refs)]
}

// sameShapeOrPanic guards element-wise ops against shape mismatches.
func sameShapeOrPanic(a, b *mat.Matrix, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("%s: shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// gradOf returns n's gradient buffer, lazily allocating a zeroed one.
func (t *Tape) gradOf(n *Node) *mat.Matrix {
	if n.Grad == nil {
		n.Grad = t.pool.GetZeroed(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// Constant wraps a matrix that requires no gradient. The matrix remains
// caller-owned: Reset never recycles it. No gradient buffer is ever
// allocated for a constant, and backward steps skip it entirely.
func (t *Tape) Constant(v *mat.Matrix) *Node {
	return t.alloc(v, opConst, false)
}

// Use introduces parameter p into the graph. The returned node's gradient
// buffer is p.Grad itself (or the tape's GradShadow slot for p, when one is
// installed), so Backward accumulates directly into the param.
func (t *Tape) Use(p *Param) *Node {
	n := t.alloc(p.Value, opUse, true)
	if t.grads != nil {
		n.Grad = t.grads.Grad(p)
	} else {
		n.Grad = p.Grad
	}
	return n
}

// Backward seeds loss with gradient 1 and propagates through the tape in
// reverse creation order. loss must be a 1×1 node produced by this tape.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward target must be 1x1, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	t.gradOf(loss).Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		// Leaves have nothing to propagate; a nil Grad means no consumer
		// contributed anything (dead branch), so the node's gradient is an
		// all-zero no-op.
		if n.op <= opUse || !n.needsGrad || n.Grad == nil {
			continue
		}
		t.backstep(n)
	}
}

// backstep propagates n.Grad into n's inputs.
func (t *Tape) backstep(n *Node) {
	g := n.Grad
	switch n.op {
	case opAdd:
		if n.a.needsGrad {
			t.gradOf(n.a).AddInPlace(g)
		}
		if n.b.needsGrad {
			t.gradOf(n.b).AddInPlace(g)
		}
	case opSub:
		if n.a.needsGrad {
			t.gradOf(n.a).AddInPlace(g)
		}
		if n.b.needsGrad {
			t.gradOf(n.b).AddScaledInPlace(-1, g)
		}
	case opMul:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			bv := n.b.Value.Data
			for i, gv := range g.Data {
				ga.Data[i] += gv * bv[i]
			}
		}
		if n.b.needsGrad {
			gb := t.gradOf(n.b)
			av := n.a.Value.Data
			for i, gv := range g.Data {
				gb.Data[i] += gv * av[i]
			}
		}
	case opScale:
		if n.a.needsGrad {
			t.gradOf(n.a).AddScaledInPlace(n.f0, g)
		}
	case opMatMul:
		// dA += dOut·Bᵀ ; dB += Aᵀ·dOut — fused, no transpose materialized.
		if n.a.needsGrad {
			mat.AddMatMulABT(t.gradOf(n.a), g, n.b.Value)
		}
		if n.b.needsGrad {
			mat.AddMatMulATB(t.gradOf(n.b), n.a.Value, g)
		}
	case opTranspose:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			rows, cols := ga.Rows, ga.Cols
			for i := 0; i < rows; i++ {
				arow := ga.Data[i*cols : (i+1)*cols]
				for j := range arow {
					arow[j] += g.Data[j*rows+i]
				}
			}
		}
	case opAddRowB:
		if n.a.needsGrad {
			t.gradOf(n.a).AddInPlace(g)
		}
		if n.b.needsGrad {
			gb := t.gradOf(n.b)
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)
				for j, gv := range row {
					gb.Data[j] += gv
				}
			}
		}
	case opConcatCols:
		off := 0
		for _, in := range n.ins {
			if in.needsGrad {
				gi := t.gradOf(in)
				for i := 0; i < in.Value.Rows; i++ {
					grow := g.Row(i)[off : off+in.Value.Cols]
					irow := gi.Row(i)
					for j, gv := range grow {
						irow[j] += gv
					}
				}
			}
			off += in.Value.Cols
		}
	case opConcatRows:
		off := 0
		for _, in := range n.ins {
			sz := len(in.Value.Data)
			if in.needsGrad {
				gi := t.gradOf(in)
				src := g.Data[off : off+sz]
				for j, gv := range src {
					gi.Data[j] += gv
				}
			}
			off += sz
		}
	case opSliceCols:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			from := n.i0
			for i := 0; i < g.Rows; i++ {
				grow := g.Row(i)
				arow := ga.Row(i)
				for j, gv := range grow {
					arow[from+j] += gv
				}
			}
		}
	case opSliceRows:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			from := n.i0
			cols := ga.Cols
			for i := 0; i < g.Rows; i++ {
				grow := g.Row(i)
				arow := ga.Data[(from+i)*cols : (from+i+1)*cols]
				for j, gv := range grow {
					arow[j] += gv
				}
			}
		}
	case opSigmoid:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			for i, y := range n.Value.Data {
				ga.Data[i] += g.Data[i] * y * (1 - y)
			}
		}
	case opTanh:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			for i, y := range n.Value.Data {
				ga.Data[i] += g.Data[i] * (1 - y*y)
			}
		}
	case opReLU:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			for i, x := range n.a.Value.Data {
				if x > 0 {
					ga.Data[i] += g.Data[i]
				}
			}
		}
	case opSoftplus:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			for i, x := range n.a.Value.Data {
				ga.Data[i] += g.Data[i] * mat.Sigmoid(x)
			}
		}
	case opSoftmaxRows:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			v := n.Value
			// For each row: dx_j = y_j (dy_j − Σ_k dy_k y_k).
			for i := 0; i < v.Rows; i++ {
				yrow := v.Row(i)
				gyrow := g.Row(i)
				garow := ga.Row(i)
				var dot float64
				for k, y := range yrow {
					dot += gyrow[k] * y
				}
				for j, y := range yrow {
					garow[j] += y * (gyrow[j] - dot)
				}
			}
		}
	case opSum:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			g0 := g.Data[0]
			for i := range ga.Data {
				ga.Data[i] += g0
			}
		}
	case opMean:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			g0 := g.Data[0] * n.f0
			for i := range ga.Data {
				ga.Data[i] += g0
			}
		}
	case opMeanRows:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			inv := n.f0
			for i := 0; i < ga.Rows; i++ {
				arow := ga.Row(i)
				for j, gv := range g.Data {
					arow[j] += gv * inv
				}
			}
		}
	case opBCE:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			g0 := g.Data[0] * n.f0
			lv := n.a.Value.Data
			for i, y := range n.ts {
				ga.Data[i] += g0 * (mat.Sigmoid(lv[i]) - y)
			}
		}
	case opSoftmaxCE:
		if n.a.needsGrad {
			ga := t.gradOf(n.a)
			g0 := g.Data[0]
			lse := n.f0
			for j, v := range n.a.Value.Data {
				p := math.Exp(v - lse)
				if j == n.i0 {
					p -= 1
				}
				ga.Data[j] += g0 * p
			}
		}
	case opLayerNorm:
		t.backLayerNorm(n)
	default:
		panic(fmt.Sprintf("nn: backstep on unexpected op %d", n.op))
	}
}

// Add returns a + b.
func (t *Tape) Add(a, b *Node) *Node {
	sameShapeOrPanic(a.Value, b.Value, "nn: Add")
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	bd := b.Value.Data
	for i, av := range a.Value.Data {
		v.Data[i] = av + bd[i]
	}
	out := t.alloc(v, opAdd, a.needsGrad || b.needsGrad)
	out.a, out.b = a, b
	return out
}

// Sub returns a − b.
func (t *Tape) Sub(a, b *Node) *Node {
	sameShapeOrPanic(a.Value, b.Value, "nn: Sub")
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	bd := b.Value.Data
	for i, av := range a.Value.Data {
		v.Data[i] = av - bd[i]
	}
	out := t.alloc(v, opSub, a.needsGrad || b.needsGrad)
	out.a, out.b = a, b
	return out
}

// Mul returns the element-wise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	sameShapeOrPanic(a.Value, b.Value, "nn: Mul")
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	bd := b.Value.Data
	for i, av := range a.Value.Data {
		v.Data[i] = av * bd[i]
	}
	out := t.alloc(v, opMul, a.needsGrad || b.needsGrad)
	out.a, out.b = a, b
	return out
}

// Scale returns s·a for a fixed scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	for i, av := range a.Value.Data {
		v.Data[i] = s * av
	}
	out := t.alloc(v, opScale, a.needsGrad)
	out.a, out.f0 = a, s
	return out
}

// MatMul returns the matrix product a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := t.pool.Get(a.Value.Rows, b.Value.Cols)
	mat.MatMulInto(v, a.Value, b.Value)
	out := t.alloc(v, opMatMul, a.needsGrad || b.needsGrad)
	out.a, out.b = a, b
	return out
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	av := a.Value
	v := t.pool.Get(av.Cols, av.Rows)
	for i := 0; i < av.Rows; i++ {
		row := av.Data[i*av.Cols : (i+1)*av.Cols]
		for j, x := range row {
			v.Data[j*av.Rows+i] = x
		}
	}
	out := t.alloc(v, opTranspose, a.needsGrad)
	out.a = a
	return out
}

// AddRowBroadcast returns a + 1·b where a is R×C and b is 1×C: b is added to
// every row of a. This is the bias pattern for dense layers over lists.
func (t *Tape) AddRowBroadcast(a, b *Node) *Node {
	if b.Value.Rows != 1 || b.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("nn: AddRowBroadcast wants 1x%d bias, got %dx%d", a.Value.Cols, b.Value.Rows, b.Value.Cols))
	}
	av := a.Value
	v := t.pool.Get(av.Rows, av.Cols)
	bd := b.Value.Data
	for i := 0; i < av.Rows; i++ {
		arow := av.Data[i*av.Cols : (i+1)*av.Cols]
		vrow := v.Data[i*av.Cols : (i+1)*av.Cols]
		for j, x := range arow {
			vrow[j] = x + bd[j]
		}
	}
	out := t.alloc(v, opAddRowB, a.needsGrad || b.needsGrad)
	out.a, out.b = a, b
	return out
}

// ConcatCols concatenates nodes horizontally: [a | b | …].
func (t *Tape) ConcatCols(ns ...*Node) *Node {
	rows, cols, needs := 0, 0, false
	for i, n := range ns {
		if i == 0 {
			rows = n.Value.Rows
		} else if n.Value.Rows != rows {
			panic(fmt.Sprintf("nn: ConcatCols row mismatch %d vs %d", n.Value.Rows, rows))
		}
		cols += n.Value.Cols
		needs = needs || n.needsGrad
	}
	v := t.pool.Get(rows, cols)
	for i := 0; i < rows; i++ {
		off := i * cols
		for _, n := range ns {
			copy(v.Data[off:off+n.Value.Cols], n.Value.Row(i))
			off += n.Value.Cols
		}
	}
	out := t.alloc(v, opConcatCols, needs)
	out.ins = t.saveRefs(ns)
	return out
}

// ConcatRows concatenates nodes vertically.
func (t *Tape) ConcatRows(ns ...*Node) *Node {
	rows, cols, needs := 0, 0, false
	for i, n := range ns {
		if i == 0 {
			cols = n.Value.Cols
		} else if n.Value.Cols != cols {
			panic(fmt.Sprintf("nn: ConcatRows col mismatch %d vs %d", n.Value.Cols, cols))
		}
		rows += n.Value.Rows
		needs = needs || n.needsGrad
	}
	v := t.pool.Get(rows, cols)
	off := 0
	for _, n := range ns {
		copy(v.Data[off:off+len(n.Value.Data)], n.Value.Data)
		off += len(n.Value.Data)
	}
	out := t.alloc(v, opConcatRows, needs)
	out.ins = t.saveRefs(ns)
	return out
}

// SliceCols returns columns [from, to) of a as a new node.
func (t *Tape) SliceCols(a *Node, from, to int) *Node {
	av := a.Value
	if from < 0 || to > av.Cols || from > to {
		panic(fmt.Sprintf("nn: SliceCols [%d,%d) out of range for %d cols", from, to, av.Cols))
	}
	v := t.pool.Get(av.Rows, to-from)
	for i := 0; i < av.Rows; i++ {
		copy(v.Row(i), av.Row(i)[from:to])
	}
	out := t.alloc(v, opSliceCols, a.needsGrad)
	out.a, out.i0, out.i1 = a, from, to
	return out
}

// SliceRows returns rows [from, to) of a as a new node.
func (t *Tape) SliceRows(a *Node, from, to int) *Node {
	av := a.Value
	if from < 0 || to > av.Rows || from > to {
		panic(fmt.Sprintf("nn: SliceRows [%d,%d) out of range for %d rows", from, to, av.Rows))
	}
	v := t.pool.Get(to-from, av.Cols)
	copy(v.Data, av.Data[from*av.Cols:to*av.Cols])
	out := t.alloc(v, opSliceRows, a.needsGrad)
	out.a, out.i0, out.i1 = a, from, to
	return out
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = mat.Sigmoid(x)
	}
	out := t.alloc(v, opSigmoid, a.needsGrad)
	out.a = a
	return out
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = math.Tanh(x)
	}
	out := t.alloc(v, opTanh, a.needsGrad)
	out.a = a
	return out
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if x > 0 {
			v.Data[i] = x
		} else {
			v.Data[i] = 0
		}
	}
	out := t.alloc(v, opReLU, a.needsGrad)
	out.a = a
	return out
}

// Softplus applies log(1+e^x) element-wise, computed stably. Its derivative
// is the sigmoid. Used to keep standard deviations positive in the
// probabilistic re-ranking head.
func (t *Tape) Softplus(a *Node) *Node {
	v := t.pool.Get(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = softplus(x)
	}
	out := t.alloc(v, opSoftplus, a.needsGrad)
	out.a = a
	return out
}

func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// SoftmaxRows applies a stable softmax to each row of a.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	av := a.Value
	v := t.pool.Get(av.Rows, av.Cols)
	for i := 0; i < av.Rows; i++ {
		row := av.Row(i)
		orow := v.Row(i)
		mx := math.Inf(-1)
		for _, x := range row {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for j, x := range row {
			e := math.Exp(x - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	out := t.alloc(v, opSoftmaxRows, a.needsGrad)
	out.a = a
	return out
}

// Sum reduces a to a 1×1 node containing the sum of its entries.
func (t *Tape) Sum(a *Node) *Node {
	v := t.pool.Get(1, 1)
	v.Data[0] = a.Value.Sum()
	out := t.alloc(v, opSum, a.needsGrad)
	out.a = a
	return out
}

// Mean reduces a to a 1×1 node containing the mean of its entries.
func (t *Tape) Mean(a *Node) *Node {
	v := t.pool.Get(1, 1)
	v.Data[0] = a.Value.Mean()
	out := t.alloc(v, opMean, a.needsGrad)
	out.a, out.f0 = a, 1/float64(len(a.Value.Data))
	return out
}

// MeanRows reduces a R×C node to 1×C by averaging over rows.
func (t *Tape) MeanRows(a *Node) *Node {
	av := a.Value
	r := av.Rows
	v := t.pool.GetZeroed(1, av.Cols)
	for i := 0; i < r; i++ {
		row := av.Row(i)
		for j, x := range row {
			v.Data[j] += x
		}
	}
	inv := 1.0
	if r > 0 {
		inv = 1 / float64(r)
	}
	v.ScaleInPlace(inv)
	out := t.alloc(v, opMeanRows, a.needsGrad)
	out.a, out.f0 = a, inv
	return out
}

// SigmoidBCE computes the mean binary cross-entropy between sigmoid(logits)
// and targets, where logits is L×1 and targets has length L. The fused form
// is numerically stable: loss_i = softplus(z_i) − y_i·z_i, d/dz = σ(z) − y.
// The targets slice is retained (not copied) until the tape is Reset; the
// caller must not mutate it before Backward.
func (t *Tape) SigmoidBCE(logits *Node, targets []float64) *Node {
	l := logits.Value
	if l.Cols != 1 || l.Rows != len(targets) {
		panic(fmt.Sprintf("nn: SigmoidBCE wants %dx1 logits for %d targets, got %dx%d", len(targets), len(targets), l.Rows, l.Cols))
	}
	var loss float64
	for i, y := range targets {
		z := l.Data[i]
		loss += softplus(z) - y*z
	}
	n := float64(len(targets))
	if n == 0 {
		n = 1
	}
	v := t.pool.Get(1, 1)
	v.Data[0] = loss / n
	out := t.alloc(v, opBCE, logits.needsGrad)
	out.a, out.f0, out.ts = logits, 1/n, targets
	return out
}

// SoftmaxCrossEntropy computes −log softmax(logits)[target] for a 1×C
// logits row, the pointer-network step loss. The fused form is stable
// (log-sum-exp) and its gradient is softmax − onehot(target).
func (t *Tape) SoftmaxCrossEntropy(logits *Node, target int) *Node {
	row := logits.Value
	if row.Rows != 1 || target < 0 || target >= row.Cols {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy wants 1×C logits and target<C, got %dx%d target %d", row.Rows, row.Cols, target))
	}
	mx := math.Inf(-1)
	for _, v := range row.Data {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for _, v := range row.Data {
		sum += math.Exp(v - mx)
	}
	lse := mx + math.Log(sum)
	v := t.pool.Get(1, 1)
	v.Data[0] = lse - row.Data[target]
	out := t.alloc(v, opSoftmaxCE, logits.needsGrad)
	out.a, out.i0, out.f0 = logits, target, lse
	return out
}

// LayerNormRows normalizes each row of a to zero mean / unit variance and
// applies a learned per-column gain g and bias b (both 1×C nodes).
func (t *Tape) LayerNormRows(a, gain, bias *Node) *Node {
	const eps = 1e-5
	rows, cols := a.Value.Rows, a.Value.Cols
	v := t.pool.Get(rows, cols)
	norm := t.pool.Get(rows, cols)  // x̂ before gain/bias, kept for backward
	invstd := t.pool.Get(1, rows+1) // row inverse std-devs, kept for backward
	gd, bd := gain.Value.Data, bias.Value.Data
	for i := 0; i < rows; i++ {
		row := a.Value.Row(i)
		var mu float64
		for _, x := range row {
			mu += x
		}
		mu /= float64(cols)
		var va float64
		for _, x := range row {
			d := x - mu
			va += d * d
		}
		va /= float64(cols)
		is := 1 / math.Sqrt(va+eps)
		invstd.Data[i] = is
		nrow := norm.Row(i)
		vrow := v.Row(i)
		for j, x := range row {
			nh := (x - mu) * is
			nrow[j] = nh
			vrow[j] = nh*gd[j] + bd[j]
		}
	}
	out := t.alloc(v, opLayerNorm, a.needsGrad || gain.needsGrad || bias.needsGrad)
	out.a, out.b, out.c = a, gain, bias
	out.aux, out.aux2 = norm, invstd
	return out
}

// backLayerNorm is the LayerNormRows backward step, split out of the main
// switch for readability. It borrows one pooled scratch row for dx̂.
func (t *Tape) backLayerNorm(n *Node) {
	g := n.Grad
	a, gain, bias := n.a, n.b, n.c
	norm, invstd := n.aux, n.aux2
	rows, cols := norm.Rows, norm.Cols
	var ggain, gbias *mat.Matrix
	if gain.needsGrad {
		ggain = t.gradOf(gain)
	}
	if bias.needsGrad {
		gbias = t.gradOf(bias)
	}
	dxh := t.pool.Get(1, cols)
	for i := 0; i < rows; i++ {
		gout := g.Row(i)
		nrow := norm.Row(i)
		// Gradients through gain and bias.
		if ggain != nil {
			for j, gv := range gout {
				ggain.Data[j] += gv * nrow[j]
			}
		}
		if gbias != nil {
			for j, gv := range gout {
				gbias.Data[j] += gv
			}
		}
		if !a.needsGrad {
			continue
		}
		// Gradient through normalization:
		// dx = invstd/C · (C·dx̂ − Σdx̂ − x̂·Σ(dx̂·x̂)) with dx̂ = dout·gain.
		c := float64(cols)
		var sum, sumxh float64
		gd := gain.Value.Data
		for j, gv := range gout {
			d := gv * gd[j]
			dxh.Data[j] = d
			sum += d
			sumxh += d * nrow[j]
		}
		arow := t.gradOf(a).Row(i)
		is := invstd.Data[i]
		for j := range arow {
			arow[j] += is / c * (c*dxh.Data[j] - sum - nrow[j]*sumxh)
		}
	}
	t.pool.Put(dxh)
}
