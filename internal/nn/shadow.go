package nn

import "repro/internal/mat"

// GradShadow is a detached set of gradient buffers mirroring a ParamSet,
// one zeroed matrix per parameter. The data-parallel trainer gives every
// gradient-accumulation slot its own shadow: a worker's backward pass
// accumulates into the slot's shadow (via Tape.WithGrads) instead of the
// shared Param.Grad buffers, so concurrent backward passes never write the
// same memory. After a batch the trainer folds the shadows into the real
// gradients with AddInto in a fixed order, which keeps float summation —
// and therefore same-seed training — bitwise reproducible regardless of
// how many workers ran.
type GradShadow struct {
	ps    *ParamSet
	grads map[*Param]*mat.Matrix
}

// NewGradShadow allocates a zeroed shadow for every parameter in ps.
func NewGradShadow(ps *ParamSet) *GradShadow {
	gs := &GradShadow{ps: ps, grads: make(map[*Param]*mat.Matrix, len(ps.order))}
	for _, p := range ps.All() {
		gs.grads[p] = mat.New(p.Grad.Rows, p.Grad.Cols)
	}
	return gs
}

// Grad returns the shadow buffer for p, falling back to p.Grad for a
// parameter that is not part of the mirrored set.
func (gs *GradShadow) Grad(p *Param) *mat.Matrix {
	if g, ok := gs.grads[p]; ok {
		return g
	}
	return p.Grad
}

// Zero clears every shadow buffer.
func (gs *GradShadow) Zero() {
	for _, name := range gs.ps.order {
		gs.grads[gs.ps.byName[name]].Zero()
	}
}

// AddInto folds the shadow into the real Param.Grad buffers, iterating
// parameters in registration order so the accumulation order is the same
// on every run.
func (gs *GradShadow) AddInto() {
	for _, name := range gs.ps.order {
		p := gs.ps.byName[name]
		p.Grad.AddInPlace(gs.grads[p])
	}
}
