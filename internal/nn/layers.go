package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// Activation selects the non-linearity applied by Dense and MLP layers.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
	SigmoidAct
)

func (a Activation) apply(t *Tape, x *Node) *Node {
	switch a {
	case Linear:
		return x
	case ReLU:
		return t.ReLU(x)
	case Tanh:
		return t.Tanh(x)
	case SigmoidAct:
		return t.Sigmoid(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// Dense is a fully connected layer y = act(x·W + b) applied row-wise, so a
// batch of L inputs is an L×in matrix producing L×out.
type Dense struct {
	W, B *Param
	Act  Activation
}

// NewDense constructs a Dense layer with Xavier-initialized weights,
// registering its parameters under the given name prefix.
func NewDense(ps *ParamSet, prefix string, in, out int, act Activation, rng *rand.Rand) *Dense {
	var w *mat.Matrix
	if act == ReLU {
		w = mat.HeNormal(in, out, rng)
	} else {
		w = mat.XavierUniform(in, out, rng)
	}
	return &Dense{
		W:   ps.New(prefix+".W", w),
		B:   ps.New(prefix+".b", mat.New(1, out)),
		Act: act,
	}
}

// Forward applies the layer to x (R×in) and returns R×out.
func (d *Dense) Forward(t *Tape, x *Node) *Node {
	y := t.AddRowBroadcast(t.MatMul(x, t.Use(d.W)), t.Use(d.B))
	return d.Act.apply(t, y)
}

// MLP is a stack of Dense layers. Hidden layers use the configured hidden
// activation; the final layer uses the output activation.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes = [in, h1,
// out] yields two Dense layers. hiddenAct applies to all but the last layer,
// outAct to the last.
func NewMLP(ps *ParamSet, prefix string, sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least [in, out] sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(ps, fmt.Sprintf("%s.l%d", prefix, i), sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// Forward applies all layers in order.
func (m *MLP) Forward(t *Tape, x *Node) *Node {
	for _, l := range m.Layers {
		x = l.Forward(t, x)
	}
	return x
}

// LayerNorm holds the gain/bias parameters for Tape.LayerNormRows.
type LayerNorm struct {
	Gain, Bias *Param
}

// NewLayerNorm creates a layer norm over dim-wide rows (gain=1, bias=0).
func NewLayerNorm(ps *ParamSet, prefix string, dim int) *LayerNorm {
	g := mat.New(1, dim)
	g.Fill(1)
	return &LayerNorm{
		Gain: ps.New(prefix+".g", g),
		Bias: ps.New(prefix+".b", mat.New(1, dim)),
	}
}

// Forward normalizes each row of x.
func (ln *LayerNorm) Forward(t *Tape, x *Node) *Node {
	return t.LayerNormRows(x, t.Use(ln.Gain), t.Use(ln.Bias))
}
