package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// GradCheck verifies analytic gradients against central finite differences.
// f must rebuild the graph from scratch on every call (fresh Tape) and
// return the scalar loss as a float64; params are the tensors whose
// gradients are checked. It returns the worst relative error observed.
//
// The analytic gradient is computed once by fAndBackward, which must run
// the same computation on a Tape and call Backward, leaving gradients in
// the params.
func GradCheck(params []*Param, f func() float64, fAndBackward func(), eps float64) (maxRelErr float64, err error) {
	for _, p := range params {
		p.ZeroGrad()
	}
	fAndBackward()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad.Data...)
	}
	for pi, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := f()
			p.Value.Data[i] = orig - eps
			down := f()
			p.Value.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			a := analytic[pi][i]
			denom := math.Max(1e-6, math.Abs(a)+math.Abs(numeric))
			rel := math.Abs(a-numeric) / denom
			if rel > maxRelErr {
				maxRelErr = rel
			}
			if rel > 0.02 && math.Abs(a-numeric) > 1e-5 {
				return maxRelErr, fmt.Errorf("nn: gradcheck failed for %s[%d]: analytic %.8f vs numeric %.8f (rel %.4f)",
					p.Name, i, a, numeric, rel)
			}
		}
	}
	return maxRelErr, nil
}

// uniformConst is a test helper exposed for packages that gradient-check
// composite models: it builds a deterministic pseudo-random matrix without
// needing an RNG, so finite differencing sees identical inputs every call.
func uniformConst(rows, cols int, seed float64) *mat.Matrix {
	m := mat.New(rows, cols)
	x := seed
	for i := range m.Data {
		// Simple multiplicative congruential stream in (0,1).
		x = math.Mod(x*997.13+0.12345, 1.0)
		m.Data[i] = x*2 - 1
	}
	return m
}
