package nn

import (
	"math"

	"repro/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients and then
// clears the gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters and zeroes them afterwards.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param]*mat.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*mat.Matrix)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum > 0 {
			v := o.velocity[p]
			if v == nil {
				v = mat.New(p.Value.Rows, p.Value.Cols)
				o.velocity[p] = v
			}
			v.ScaleInPlace(o.Momentum).AddScaledInPlace(1, p.Grad)
			p.Value.AddScaledInPlace(-o.LR, v)
		} else {
			p.Value.AddScaledInPlace(-o.LR, p.Grad)
		}
		p.ZeroGrad()
	}
}

// Adam implements Kingma & Ba (2014), the optimizer the paper trains every
// model with (Section IV-C).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param]*mat.Matrix
	v map[*Param]*mat.Matrix
}

// NewAdam returns Adam with the paper-standard hyper-parameters
// β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*mat.Matrix),
		v: make(map[*Param]*mat.Matrix),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		if m == nil {
			m = mat.New(p.Value.Rows, p.Value.Cols)
			o.m[p] = m
		}
		v := o.v[p]
		if v == nil {
			v = mat.New(p.Value.Rows, p.Value.Cols)
			o.v[p] = v
		}
		for i, g := range p.Grad.Data {
			if o.WeightDecay > 0 {
				g += o.WeightDecay * p.Value.Data[i]
			}
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.Value.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
		p.ZeroGrad()
	}
}
