package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func gradCheckModel(t *testing.T, name string, ps *ParamSet, build func(tp *Tape) *Node) {
	t.Helper()
	f := func() float64 { tp := NewTape(); return build(tp).Value.Data[0] }
	fb := func() { tp := NewTape(); tp.Backward(build(tp)) }
	if _, err := GradCheck(ps.All(), f, fb, 1e-5); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestDenseShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	d := NewDense(ps, "d", 3, 2, Tanh, rng)
	x := uniformConst(4, 3, 0.33)
	tp := NewTape()
	y := d.Forward(tp, tp.Constant(x))
	if y.Value.Rows != 4 || y.Value.Cols != 2 {
		t.Fatalf("Dense output %dx%d, want 4x2", y.Value.Rows, y.Value.Cols)
	}
	gradCheckModel(t, "Dense", ps, func(tp *Tape) *Node {
		return tp.Sum(d.Forward(tp, tp.Constant(x)))
	})
}

func TestMLPGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := NewParamSet()
	m := NewMLP(ps, "m", []int{3, 5, 1}, Tanh, Linear, rng)
	x := uniformConst(2, 3, 0.71)
	gradCheckModel(t, "MLP", ps, func(tp *Tape) *Node {
		return tp.Sum(m.Forward(tp, tp.Constant(x)))
	})
}

func TestMLPTooFewSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMLP([4]) did not panic")
		}
	}()
	NewMLP(NewParamSet(), "m", []int{4}, ReLU, Linear, rand.New(rand.NewSource(1)))
}

func TestLSTMGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := NewParamSet()
	l := NewLSTM(ps, "lstm", 3, 4, rng)
	seq := uniformConst(4, 3, 0.27)
	gradCheckModel(t, "LSTM", ps, func(tp *Tape) *Node {
		return tp.Sum(l.Forward(tp, tp.Constant(seq)))
	})
}

func TestLSTMLastEqualsFinalState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := NewParamSet()
	l := NewLSTM(ps, "lstm", 2, 3, rng)
	seq := uniformConst(5, 2, 0.81)
	tp := NewTape()
	all := l.Forward(tp, tp.Constant(seq))
	tp2 := NewTape()
	last := l.Last(tp2, tp2.Constant(seq))
	if !last.Value.EqualApprox(all.Value.SliceRows(4, 5), 1e-12) {
		t.Fatal("Last != final row of Forward")
	}
}

func TestLSTMEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := NewParamSet()
	l := NewLSTM(ps, "lstm", 2, 3, rng)
	tp := NewTape()
	out := l.Forward(tp, tp.Constant(mat.New(0, 2)))
	if out.Value.Rows != 0 || out.Value.Cols != 3 {
		t.Fatalf("empty LSTM output %dx%d", out.Value.Rows, out.Value.Cols)
	}
	last := l.Last(tp, tp.Constant(mat.New(0, 2)))
	if last.Value.Rows != 1 || last.Value.MaxAbs() != 0 {
		t.Fatal("empty-sequence Last should be the zero state")
	}
}

func TestBiLSTMGradAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps := NewParamSet()
	b := NewBiLSTM(ps, "bi", 2, 3, rng)
	seq := uniformConst(3, 2, 0.19)
	tp := NewTape()
	out := b.Forward(tp, tp.Constant(seq))
	if out.Value.Rows != 3 || out.Value.Cols != 6 {
		t.Fatalf("BiLSTM output %dx%d, want 3x6", out.Value.Rows, out.Value.Cols)
	}
	gradCheckModel(t, "BiLSTM", ps, func(tp *Tape) *Node {
		return tp.Sum(b.Forward(tp, tp.Constant(seq)))
	})
}

func TestBiLSTMBackwardDirectionMatters(t *testing.T) {
	// Reversing the input sequence must change the output (the backward
	// pass actually reads the future).
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	b := NewBiLSTM(ps, "bi", 2, 3, rng)
	seq := uniformConst(4, 2, 0.39)
	rev := mat.New(4, 2)
	for i := 0; i < 4; i++ {
		copy(rev.Row(i), seq.Row(3-i))
	}
	tp := NewTape()
	o1 := b.Forward(tp, tp.Constant(seq))
	o2 := b.Forward(tp, tp.Constant(rev))
	if o1.Value.EqualApprox(o2.Value, 1e-9) {
		t.Fatal("BiLSTM is order-invariant; backward pass broken")
	}
}

func TestGRUGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := NewParamSet()
	g := NewGRU(ps, "gru", 3, 4, rng)
	seq := uniformConst(3, 3, 0.49)
	gradCheckModel(t, "GRU", ps, func(tp *Tape) *Node {
		return tp.Sum(g.Forward(tp, tp.Constant(seq)))
	})
}

func TestSelfAttentionShapeAndGrad(t *testing.T) {
	// Eq. (2): parameter-free self-attention. Check through a parameter
	// upstream of it.
	ps := NewParamSet()
	p := ps.New("x", uniformConst(3, 4, 0.61))
	gradCheckModel(t, "SelfAttention", ps, func(tp *Tape) *Node {
		return tp.Sum(SelfAttention(tp, tp.Use(p)))
	})
}

func TestAttentionHeadGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := NewParamSet()
	h := NewAttentionHead(ps, "h", 4, 3, rng)
	x := uniformConst(3, 4, 0.77)
	gradCheckModel(t, "AttentionHead", ps, func(tp *Tape) *Node {
		return tp.Sum(h.Forward(tp, tp.Constant(x), nil))
	})
}

func TestAttentionCausalMask(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ps := NewParamSet()
	h := NewAttentionHead(ps, "h", 3, 3, rng)
	// With a causal mask, changing a later row must not affect an earlier
	// row's output.
	x1 := uniformConst(4, 3, 0.55)
	x2 := x1.Clone()
	x2.Set(3, 0, x2.At(3, 0)+5) // perturb the last position
	tp := NewTape()
	o1 := h.Forward(tp, tp.Constant(x1), CausalMask(4))
	o2 := h.Forward(tp, tp.Constant(x2), CausalMask(4))
	for i := 0; i < 3; i++ { // all but the last row must match
		for j := 0; j < 3; j++ {
			if d := o1.Value.At(i, j) - o2.Value.At(i, j); d > 1e-9 || d < -1e-9 {
				t.Fatalf("causal mask leaked future info at row %d", i)
			}
		}
	}
}

func TestMultiHeadAttentionGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := NewParamSet()
	m := NewMultiHeadAttention(ps, "mha", 4, 2, rng)
	x := uniformConst(3, 4, 0.37)
	gradCheckModel(t, "MultiHeadAttention", ps, func(tp *Tape) *Node {
		return tp.Sum(m.Forward(tp, tp.Constant(x), nil))
	})
}

func TestMultiHeadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible head count did not panic")
		}
	}()
	NewMultiHeadAttention(NewParamSet(), "m", 5, 2, rand.New(rand.NewSource(1)))
}

func TestTransformerBlockGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ps := NewParamSet()
	b := NewTransformerBlock(ps, "tb", 4, 2, 8, rng)
	x := uniformConst(3, 4, 0.83)
	gradCheckModel(t, "TransformerBlock", ps, func(tp *Tape) *Node {
		return tp.Sum(b.Forward(tp, tp.Constant(x), nil))
	})
}

func TestBandMask(t *testing.T) {
	m := BandMask(5, 1)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			masked := m.At(i, j) < -1
			wantMasked := j < i-1 || j > i+1
			if masked != wantMasked {
				t.Fatalf("BandMask(5,1)[%d][%d] masked=%v want %v", i, j, masked, wantMasked)
			}
		}
	}
}

func TestParamSetDuplicatePanics(t *testing.T) {
	ps := NewParamSet()
	ps.New("w", mat.New(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate param name did not panic")
		}
	}()
	ps.New("w", mat.New(1, 1))
}

func TestClipGradNorm(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("p", mat.New(1, 2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4 // norm 5
	pre := ps.ClipGradNorm(1)
	if pre < 4.99 || pre > 5.01 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	if n := mat.NormVec(p.Grad.Data); n < 0.99 || n > 1.01 {
		t.Fatalf("post-clip norm %v, want 1", n)
	}
	// Below the threshold: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ps.ClipGradNorm(1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("clip rescaled a small gradient")
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// A tiny regression: y = 2x − 1 learned by a single Dense layer.
	rng := rand.New(rand.NewSource(13))
	ps := NewParamSet()
	d := NewDense(ps, "d", 1, 1, Linear, rng)
	opt := NewAdam(0.05)
	lossAt := func() float64 {
		tp := NewTape()
		x := tp.Constant(mat.ColVector([]float64{-1, 0, 1, 2}))
		y := d.Forward(tp, x)
		want := tp.Constant(mat.ColVector([]float64{-3, -1, 1, 3}))
		diff := tp.Sub(y, want)
		return tp.Mean(tp.Mul(diff, diff)).Value.Data[0]
	}
	before := lossAt()
	for i := 0; i < 200; i++ {
		tp := NewTape()
		x := tp.Constant(mat.ColVector([]float64{-1, 0, 1, 2}))
		y := d.Forward(tp, x)
		want := tp.Constant(mat.ColVector([]float64{-3, -1, 1, 3}))
		diff := tp.Sub(y, want)
		tp.Backward(tp.Mean(tp.Mul(diff, diff)))
		opt.Step(ps.All())
	}
	after := lossAt()
	if after > before/10 || after > 0.05 {
		t.Fatalf("Adam failed to fit line: loss %v → %v", before, after)
	}
	if w := d.W.Value.At(0, 0); w < 1.5 || w > 2.5 {
		t.Fatalf("learned slope %v, want ≈2", w)
	}
}

func TestSGDMomentumStep(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("p", mat.FromSlice(1, 1, []float64{1}))
	opt := NewSGD(0.1, 0.9)
	p.Grad.Data[0] = 1
	opt.Step(ps.All())
	if got := p.Value.Data[0]; got != 0.9 {
		t.Fatalf("first SGD step gave %v, want 0.9", got)
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("Step did not zero the gradient")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ps := NewParamSet()
	NewMLP(ps, "m", []int{3, 4, 2}, Tanh, Linear, rng)
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ps2 := NewParamSet()
	NewMLP(ps2, "m", []int{3, 4, 2}, Tanh, Linear, rand.New(rand.NewSource(99)))
	if err := ps2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps.All() {
		q := ps2.Get(p.Name)
		if q == nil || !q.Value.EqualApprox(p.Value, 0) {
			t.Fatalf("param %s not restored", p.Name)
		}
	}
}

func TestSerializeShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ps := NewParamSet()
	NewDense(ps, "d", 3, 2, Linear, rng)
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ps2 := NewParamSet()
	NewDense(ps2, "d", 3, 5, Linear, rng) // different shape
	if err := ps2.Load(&buf); err == nil {
		t.Fatal("Load accepted a shape mismatch")
	}
}

func TestCopyValuesFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := NewParamSet()
	NewDense(a, "d", 2, 2, Linear, rng)
	b := NewParamSet()
	NewDense(b, "d", 2, 2, Linear, rand.New(rand.NewSource(77)))
	n := b.CopyValuesFrom(a)
	if n != 2 {
		t.Fatalf("copied %d params, want 2", n)
	}
	if !b.Get("d.W").Value.EqualApprox(a.Get("d.W").Value, 0) {
		t.Fatal("weights not copied")
	}
}

func TestCrossForwardGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ps := NewParamSet()
	h := NewAttentionHead(ps, "x", 3, 2, rng)
	q := uniformConst(2, 3, 0.21)
	kv := uniformConst(4, 3, 0.83)
	gradCheckModel(t, "CrossForward", ps, func(tp *Tape) *Node {
		return tp.Sum(h.CrossForward(tp, tp.Constant(q), tp.Constant(kv)))
	})
}

func TestUseAliasesParamGrad(t *testing.T) {
	// Tape.Use must alias the parameter's gradient buffer, so gradients
	// survive across multiple tapes until the optimizer consumes them.
	p := NewParam("p", uniformConst(1, 2, 0.4))
	tp := NewTape()
	n := tp.Use(p)
	if n.Grad != p.Grad {
		t.Fatal("Use did not alias the param gradient")
	}
	tp.Backward(tp.Sum(n))
	if p.Grad.Data[0] != 1 || p.Grad.Data[1] != 1 {
		t.Fatalf("gradient not accumulated into param: %v", p.Grad.Data)
	}
}

func TestAdamWeightDecay(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("p", mat.FromSlice(1, 1, []float64{10}))
	opt := NewAdam(0.1)
	opt.WeightDecay = 1
	// Zero gradient: only decay should move the weight toward zero.
	opt.Step(ps.All())
	if p.Value.Data[0] >= 10 {
		t.Fatalf("weight decay did not shrink the parameter: %v", p.Value.Data[0])
	}
}
