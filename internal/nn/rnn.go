package nn

import (
	"math/rand"

	"repro/internal/mat"
)

// LSTMCell is a standard long short-term memory cell (Hochreiter &
// Schmidhuber, 1997) with a single fused weight matrix over [x, h].
// Gate order in the fused projection is (input, forget, cell, output).
type LSTMCell struct {
	W      *Param // (in+hidden) × 4·hidden
	B      *Param // 1 × 4·hidden
	Hidden int
}

// NewLSTMCell builds a cell mapping `in`-dimensional inputs to a
// `hidden`-dimensional state. The forget-gate bias is initialized to 1,
// the usual trick to ease gradient flow early in training.
func NewLSTMCell(ps *ParamSet, prefix string, in, hidden int, rng *rand.Rand) *LSTMCell {
	b := mat.New(1, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		b.Data[j] = 1
	}
	return &LSTMCell{
		W:      ps.New(prefix+".W", mat.XavierUniform(in+hidden, 4*hidden, rng)),
		B:      ps.Add(&Param{Name: prefix + ".b", Value: b, Grad: mat.New(1, 4*hidden)}),
		Hidden: hidden,
	}
}

// Step advances the cell one timestep. x is 1×in; h and c are 1×hidden.
// It returns the new hidden and cell states.
func (l *LSTMCell) Step(t *Tape, x, h, c *Node) (hNew, cNew *Node) {
	z := t.ConcatCols(x, h)
	gates := t.AddRowBroadcast(t.MatMul(z, t.Use(l.W)), t.Use(l.B))
	hd := l.Hidden
	i := t.Sigmoid(t.SliceCols(gates, 0, hd))
	f := t.Sigmoid(t.SliceCols(gates, hd, 2*hd))
	g := t.Tanh(t.SliceCols(gates, 2*hd, 3*hd))
	o := t.Sigmoid(t.SliceCols(gates, 3*hd, 4*hd))
	cNew = t.Add(t.Mul(f, c), t.Mul(i, g))
	hNew = t.Mul(o, t.Tanh(cNew))
	return hNew, cNew
}

// InitState returns zeroed hidden and cell state nodes.
func (l *LSTMCell) InitState(t *Tape) (h, c *Node) {
	return l.InitStateRows(t, 1)
}

// InitStateRows returns zeroed hidden and cell states for g sequences
// advanced in lockstep (g×hidden each). Step is shape-agnostic in the row
// dimension, so a g-row state batches g independent recurrences.
func (l *LSTMCell) InitStateRows(t *Tape, g int) (h, c *Node) {
	return t.Constant(mat.New(g, l.Hidden)), t.Constant(mat.New(g, l.Hidden))
}

// LSTM runs an LSTMCell over a sequence given as an L×in node (one row per
// timestep) and returns the per-step hidden states stacked as L×hidden.
type LSTM struct {
	Cell *LSTMCell
}

// NewLSTM builds a unidirectional LSTM.
func NewLSTM(ps *ParamSet, prefix string, in, hidden int, rng *rand.Rand) *LSTM {
	return &LSTM{Cell: NewLSTMCell(ps, prefix, in, hidden, rng)}
}

// Forward returns the stacked hidden states (L×hidden). For an empty
// sequence it returns a 0×hidden node.
func (l *LSTM) Forward(t *Tape, seq *Node) *Node {
	states := l.ForwardAll(t, seq)
	if len(states) == 0 {
		return t.Constant(mat.New(0, l.Cell.Hidden))
	}
	return t.ConcatRows(states...)
}

// ForwardAll returns the hidden state node for each timestep.
func (l *LSTM) ForwardAll(t *Tape, seq *Node) []*Node {
	h, c := l.Cell.InitState(t)
	steps := seq.Value.Rows
	out := make([]*Node, 0, steps)
	for i := 0; i < steps; i++ {
		x := t.SliceRows(seq, i, i+1)
		h, c = l.Cell.Step(t, x, h, c)
		out = append(out, h)
	}
	return out
}

// Last returns the final hidden state (1×hidden) of the sequence, or a zero
// state for an empty sequence. The paper uses this as the per-topic summary
// vector t_j of a user's behavior sequence.
func (l *LSTM) Last(t *Tape, seq *Node) *Node {
	states := l.ForwardAll(t, seq)
	if len(states) == 0 {
		h, _ := l.Cell.InitState(t)
		return h
	}
	return states[len(states)-1]
}

// BiLSTM runs one LSTM forward and one backward over a sequence and
// concatenates the per-step states, giving L×2·hidden outputs. RAPID's
// listwise relevance estimator (Section III-B) is built on this layer.
type BiLSTM struct {
	Fwd, Bwd *LSTMCell
}

// NewBiLSTM builds a bidirectional LSTM.
func NewBiLSTM(ps *ParamSet, prefix string, in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTMCell(ps, prefix+".fwd", in, hidden, rng),
		Bwd: NewLSTMCell(ps, prefix+".bwd", in, hidden, rng),
	}
}

// Forward returns the concatenated forward/backward states, L×2·hidden.
func (b *BiLSTM) Forward(t *Tape, seq *Node) *Node {
	steps := seq.Value.Rows
	if steps == 0 {
		return t.Constant(mat.New(0, 2*b.Fwd.Hidden))
	}
	fh, fc := b.Fwd.InitState(t)
	fwd := make([]*Node, steps)
	for i := 0; i < steps; i++ {
		x := t.SliceRows(seq, i, i+1)
		fh, fc = b.Fwd.Step(t, x, fh, fc)
		fwd[i] = fh
	}
	bh, bc := b.Bwd.InitState(t)
	bwd := make([]*Node, steps)
	for i := steps - 1; i >= 0; i-- {
		x := t.SliceRows(seq, i, i+1)
		bh, bc = b.Bwd.Step(t, x, bh, bc)
		bwd[i] = bh
	}
	rows := make([]*Node, steps)
	for i := 0; i < steps; i++ {
		rows[i] = t.ConcatCols(fwd[i], bwd[i])
	}
	return t.ConcatRows(rows...)
}

// GRUCell is a gated recurrent unit (used by the DLCM baseline). Gate order
// in the fused projection is (reset, update); the candidate state has its
// own weights because it depends on the reset-gated hidden state.
type GRUCell struct {
	Wg     *Param // (in+hidden) × 2·hidden, reset and update gates
	Bg     *Param // 1 × 2·hidden
	Wc     *Param // (in+hidden) × hidden, candidate
	Bc     *Param // 1 × hidden
	Hidden int
}

// NewGRUCell builds a GRU cell.
func NewGRUCell(ps *ParamSet, prefix string, in, hidden int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		Wg:     ps.New(prefix+".Wg", mat.XavierUniform(in+hidden, 2*hidden, rng)),
		Bg:     ps.New(prefix+".bg", mat.New(1, 2*hidden)),
		Wc:     ps.New(prefix+".Wc", mat.XavierUniform(in+hidden, hidden, rng)),
		Bc:     ps.New(prefix+".bc", mat.New(1, hidden)),
		Hidden: hidden,
	}
}

// Step advances the cell one timestep: x is 1×in, h is 1×hidden.
func (g *GRUCell) Step(t *Tape, x, h *Node) *Node {
	z := t.ConcatCols(x, h)
	gates := t.Sigmoid(t.AddRowBroadcast(t.MatMul(z, t.Use(g.Wg)), t.Use(g.Bg)))
	hd := g.Hidden
	r := t.SliceCols(gates, 0, hd)
	u := t.SliceCols(gates, hd, 2*hd)
	zc := t.ConcatCols(x, t.Mul(r, h))
	cand := t.Tanh(t.AddRowBroadcast(t.MatMul(zc, t.Use(g.Wc)), t.Use(g.Bc)))
	// h' = (1−u)⊙h + u⊙cand
	one := t.Constant(onesLike(u.Value))
	return t.Add(t.Mul(t.Sub(one, u), h), t.Mul(u, cand))
}

// GRU runs a GRUCell over an L×in sequence, returning L×hidden states.
type GRU struct {
	Cell *GRUCell
}

// NewGRU builds a unidirectional GRU.
func NewGRU(ps *ParamSet, prefix string, in, hidden int, rng *rand.Rand) *GRU {
	return &GRU{Cell: NewGRUCell(ps, prefix, in, hidden, rng)}
}

// Forward returns the stacked hidden states (L×hidden).
func (g *GRU) Forward(t *Tape, seq *Node) *Node {
	steps := seq.Value.Rows
	if steps == 0 {
		return t.Constant(mat.New(0, g.Cell.Hidden))
	}
	h := t.Constant(mat.New(1, g.Cell.Hidden))
	out := make([]*Node, steps)
	for i := 0; i < steps; i++ {
		x := t.SliceRows(seq, i, i+1)
		h = g.Cell.Step(t, x, h)
		out[i] = h
	}
	return t.ConcatRows(out...)
}

func onesLike(m *mat.Matrix) *mat.Matrix {
	o := mat.New(m.Rows, m.Cols)
	o.Fill(1)
	return o
}
