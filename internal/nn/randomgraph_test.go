package nn

import (
	"math/rand"
	"testing"
)

// TestRandomGraphGradients property-checks the autodiff engine itself:
// random compositions of smooth tape ops over two parameters must match
// finite differences. This catches interaction bugs that per-op checks
// cannot (gradient accumulation across shared subexpressions, fan-out,
// op ordering).
func TestRandomGraphGradients(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(3)
		a := NewParam("a", uniformConst(rows, cols, 0.1+0.03*float64(trial)))
		b := NewParam("b", uniformConst(rows, cols, 0.9-0.02*float64(trial)))
		plan := make([]int, 4+rng.Intn(4))
		for i := range plan {
			plan[i] = rng.Intn(6)
		}
		build := func(tp *Tape) *Node {
			// Start from both params so every graph exercises fan-in.
			x := tp.Add(tp.Use(a), tp.Use(b))
			y := tp.Mul(tp.Use(a), tp.Use(b)) // shared subexpression inputs
			for _, op := range plan {
				switch op {
				case 0:
					x = tp.Tanh(x)
				case 1:
					x = tp.Sigmoid(x)
				case 2:
					x = tp.Add(x, y)
				case 3:
					x = tp.Mul(x, tp.Constant(uniformConst(rows, cols, 0.5)))
				case 4:
					x = tp.Scale(x, 0.7)
				case 5:
					x = tp.Softplus(x)
				}
			}
			// Mix in a matmul with the transpose for non-elementwise flow.
			z := tp.MatMul(x, tp.Transpose(y)) // rows×rows
			return tp.Mean(z)
		}
		f := func() float64 { tp := NewTape(); return build(tp).Value.Data[0] }
		fb := func() { tp := NewTape(); tp.Backward(build(tp)) }
		if _, err := GradCheck([]*Param{a, b}, f, fb, 1e-5); err != nil {
			t.Fatalf("trial %d (plan %v): %v", trial, plan, err)
		}
	}
}
