package nn

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// buildSmallNet runs a tiny MLP forward/backward on t and returns the loss.
func buildSmallNet(t *Tape, w1, b1, w2 *Param, x *mat.Matrix, targets []float64) float64 {
	h := t.Tanh(t.AddRowBroadcast(t.MatMul(t.Constant(x), t.Use(w1)), t.Use(b1)))
	logits := t.MatMul(h, t.Use(w2))
	loss := t.SigmoidBCE(logits, targets)
	t.Backward(loss)
	return loss.Value.Data[0]
}

func TestTapeResetReproducesGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := NewParamSet()
	w1 := ps.New("w1", mat.XavierUniform(4, 6, rng))
	b1 := ps.New("b1", mat.New(1, 6))
	w2 := ps.New("w2", mat.XavierUniform(6, 1, rng))
	x := mat.RandNormal(3, 4, 0, 1, rng)
	targets := []float64{1, 0, 1}

	// Reference pass on a throwaway tape.
	wantLoss := buildSmallNet(NewTape(), w1, b1, w2, x, targets)
	wantGrads := make([]*mat.Matrix, 0, 3)
	for _, p := range ps.All() {
		wantGrads = append(wantGrads, p.Grad.Clone())
	}

	// A reused tape — after unrelated work plus Reset — must produce
	// bitwise-identical losses and gradients on recycled buffers.
	tape := NewTape()
	buildSmallNet(tape, w1, b1, w2, mat.RandNormal(5, 4, 0, 1, rng), []float64{0, 1, 0, 1, 0})
	for pass := 0; pass < 3; pass++ {
		tape.Reset()
		ps.ZeroGrad()
		got := buildSmallNet(tape, w1, b1, w2, x, targets)
		if got != wantLoss {
			t.Fatalf("pass %d: loss %v != fresh-tape loss %v", pass, got, wantLoss)
		}
		for i, p := range ps.All() {
			if !p.Grad.EqualApprox(wantGrads[i], 0) {
				t.Fatalf("pass %d: grad %s differs after tape reuse", pass, p.Name)
			}
		}
	}
}

func TestTapeReuseSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	w1 := ps.New("w1", mat.XavierUniform(4, 6, rng))
	b1 := ps.New("b1", mat.New(1, 6))
	w2 := ps.New("w2", mat.XavierUniform(6, 1, rng))
	x := mat.RandNormal(3, 4, 0, 1, rng)
	targets := []float64{1, 0, 1}

	tape := NewTape()
	buildSmallNet(tape, w1, b1, w2, x, targets) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		tape.Reset()
		buildSmallNet(tape, w1, b1, w2, x, targets)
	})
	// Steady state should be near-zero; leave headroom for the runtime's
	// occasional map/stack noise but fail loudly on per-op churn (~30 nodes).
	if allocs > 4 {
		t.Fatalf("steady-state tape reuse allocates %.0f objects per pass, want <= 4", allocs)
	}
}

func TestConstantGradStaysNil(t *testing.T) {
	tape := NewTape()
	ps := NewParamSet()
	w := ps.New("w", mat.FromRows([][]float64{{0.5, -0.25}}))
	c := tape.Constant(mat.FromRows([][]float64{{1, 2}, {3, 4}}))
	loss := tape.Sum(tape.MatMul(c, tape.Transpose(tape.Use(w))))
	tape.Backward(loss)
	if c.Grad != nil {
		t.Fatal("Constant node grew a gradient buffer; it should stay nil")
	}
	if w.Grad.Data[0] == 0 && w.Grad.Data[1] == 0 {
		t.Fatal("parameter gradient did not accumulate")
	}
}

func TestNewTapeCapAndNumNodes(t *testing.T) {
	tape := NewTapeCap(1000)
	if got := tape.NumNodes(); got != 0 {
		t.Fatalf("fresh tape NumNodes = %d", got)
	}
	x := mat.New(2, 2)
	for i := 0; i < 700; i++ {
		tape.Constant(x)
	}
	if got := tape.NumNodes(); got != 700 {
		t.Fatalf("NumNodes = %d, want 700", got)
	}
	// Node pointers must stay stable as the arena grows past its hint.
	first := tape.Constant(x)
	for i := 0; i < 5000; i++ {
		tape.Constant(x)
	}
	if first.Value != x {
		t.Fatal("node moved while the tape grew")
	}
	tape.Reset()
	if got := tape.NumNodes(); got != 0 {
		t.Fatalf("NumNodes after Reset = %d", got)
	}
}

func TestGradShadowIsolatesAndFolds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := NewParamSet()
	w := ps.New("w", mat.XavierUniform(2, 2, rng))
	x := mat.RandNormal(2, 2, 0, 1, rng)

	// Reference gradient via direct accumulation.
	direct := NewTape()
	direct.Backward(direct.Sum(direct.MatMul(direct.Constant(x), direct.Use(w))))
	want := w.Grad.Clone()
	ps.ZeroGrad()

	gs := NewGradShadow(ps)
	shadowed := NewTape()
	shadowed.WithGrads(gs)
	shadowed.Backward(shadowed.Sum(shadowed.MatMul(shadowed.Constant(x), shadowed.Use(w))))
	if w.Grad.MaxAbs() != 0 {
		t.Fatal("shadowed backward leaked into Param.Grad")
	}
	if !gs.Grad(w).EqualApprox(want, 0) {
		t.Fatal("shadow gradient differs from direct gradient")
	}
	gs.AddInto()
	if !w.Grad.EqualApprox(want, 0) {
		t.Fatal("AddInto did not fold the shadow into Param.Grad")
	}
	gs.Zero()
	if gs.Grad(w).MaxAbs() != 0 {
		t.Fatal("Zero left shadow gradients dirty")
	}

	// A param outside the mirrored set falls back to its own buffer.
	other := NewParam("other", mat.New(1, 1))
	if gs.Grad(other) != other.Grad {
		t.Fatal("Grad for unmirrored param should alias its own buffer")
	}
}
