package nn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Param is a trainable tensor with a persistent gradient buffer. Backward
// passes accumulate into Grad; optimizers consume and reset it.
type Param struct {
	Name  string
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// NewParam wraps v as a named parameter with a zeroed gradient.
func NewParam(name string, v *mat.Matrix) *Param {
	return &Param{Name: name, Value: v, Grad: mat.New(v.Rows, v.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ParamSet is a named collection of parameters. Layers register their
// parameters into a set so optimizers and serialization can address the
// whole model uniformly.
type ParamSet struct {
	byName map[string]*Param
	order  []string
}

// NewParamSet returns an empty set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// Add registers p. It panics on duplicate names, which almost always
// indicates two layers sharing a prefix by mistake.
func (s *ParamSet) Add(p *Param) *Param {
	if _, dup := s.byName[p.Name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", p.Name))
	}
	s.byName[p.Name] = p
	s.order = append(s.order, p.Name)
	return p
}

// New creates, registers and returns a parameter initialized to v.
func (s *ParamSet) New(name string, v *mat.Matrix) *Param {
	return s.Add(NewParam(name, v))
}

// Get returns the parameter with the given name, or nil.
func (s *ParamSet) Get(name string) *Param { return s.byName[name] }

// All returns the parameters in registration order.
func (s *ParamSet) All() []*Param {
	out := make([]*Param, len(s.order))
	for i, n := range s.order {
		out[i] = s.byName[n]
	}
	return out
}

// Names returns the sorted parameter names.
func (s *ParamSet) Names() []string {
	out := append([]string(nil), s.order...)
	sort.Strings(out)
	return out
}

// ZeroGrad clears every parameter's gradient.
func (s *ParamSet) ZeroGrad() {
	for _, name := range s.order {
		s.byName[name].ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters in the set.
func (s *ParamSet) NumParams() int {
	n := 0
	for _, name := range s.order {
		n += len(s.byName[name].Value.Data)
	}
	return n
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, the usual stabilizer for recurrent nets. It returns the
// pre-clip norm. Iteration follows registration order, not map order:
// the norm is a float sum, and summation order must be identical from run
// to run for same-seed training to be bitwise reproducible.
func (s *ParamSet) ClipGradNorm(maxNorm float64) float64 {
	var total float64
	for _, name := range s.order {
		for _, g := range s.byName[name].Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, name := range s.order {
			s.byName[name].Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
