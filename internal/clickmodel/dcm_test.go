package clickmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testDCM builds a small deterministic DCM over 4 items and 2 topics.
func testDCM(lambda float64) *DCM {
	rel := map[int]float64{0: 0.8, 1: 0.6, 2: 0.4, 3: 0.2}
	cover := map[int][]float64{
		0: {1, 0}, 1: {1, 0}, 2: {0, 1}, 3: {0, 1},
	}
	return &DCM{
		Lambda:      lambda,
		Relevance:   func(_, v int) float64 { return rel[v] },
		DivWeight:   func(int) []float64 { return []float64{0.5, 0.5} },
		Cover:       func(v int) []float64 { return cover[v] },
		Termination: []float64{0.5, 0.4, 0.3, 0.2},
		Topics:      2,
	}
}

func TestAttractionsPureRelevance(t *testing.T) {
	d := testDCM(1.0)
	phi := d.Attractions(0, []int{0, 1, 2, 3})
	want := []float64{0.8, 0.6, 0.4, 0.2}
	for i, w := range want {
		if math.Abs(phi[i]-w) > 1e-12 {
			t.Fatalf("phi[%d] = %v, want %v", i, phi[i], w)
		}
	}
}

func TestAttractionsDiversityGain(t *testing.T) {
	d := testDCM(0.5)
	// Items 0,1 share topic 0. The second occurrence of the topic earns no
	// coverage gain, so item 1 placed after 0 has φ = 0.5·0.6 + 0.5·0 = 0.3.
	phi := d.Attractions(0, []int{0, 1, 2})
	if math.Abs(phi[0]-(0.5*0.8+0.5*0.5)) > 1e-12 {
		t.Fatalf("phi[0] = %v", phi[0])
	}
	if math.Abs(phi[1]-0.3) > 1e-12 {
		t.Fatalf("phi[1] = %v, want 0.3 (no diversity gain)", phi[1])
	}
	// Item 2 opens topic 1: full gain.
	if math.Abs(phi[2]-(0.5*0.4+0.5*0.5)) > 1e-12 {
		t.Fatalf("phi[2] = %v", phi[2])
	}
}

func TestAttractionsOrderDependence(t *testing.T) {
	d := testDCM(0.5)
	a := d.Attractions(0, []int{0, 1})
	b := d.Attractions(0, []int{1, 0})
	// Whichever same-topic item is listed first receives the coverage
	// gain; the second receives none.
	if math.Abs(a[0]-0.65) > 1e-9 || math.Abs(a[1]-0.30) > 1e-9 {
		t.Fatalf("list {0,1}: %v", a)
	}
	if math.Abs(b[0]-0.55) > 1e-9 || math.Abs(b[1]-0.40) > 1e-9 {
		t.Fatalf("list {1,0}: %v", b)
	}
}

// Property: attraction probabilities stay in [0, 1] under any weights.
func TestAttractionsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := rng.Float64()
		d := testDCM(lambda)
		list := rng.Perm(4)
		for _, p := range d.Attractions(0, list) {
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonExtension(t *testing.T) {
	d := testDCM(1)
	if d.Epsilon(0) != 0.5 || d.Epsilon(3) != 0.2 {
		t.Fatal("Epsilon lookup broken")
	}
	if d.Epsilon(10) != 0.2 {
		t.Fatalf("Epsilon beyond slice = %v, want last value", d.Epsilon(10))
	}
	empty := &DCM{}
	if empty.Epsilon(0) != 0 {
		t.Fatal("empty termination should give 0")
	}
}

func TestExpectedClicksMatchesSimulation(t *testing.T) {
	d := testDCM(0.7)
	list := []int{0, 2, 1, 3}
	exp := d.ExpectedClicks(0, list)
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := make([]float64, len(list))
	for i := 0; i < n; i++ {
		clicks, _ := d.Simulate(0, list, rng)
		for k, c := range clicks {
			if c {
				counts[k]++
			}
		}
	}
	for k := range list {
		mc := counts[k] / n
		if math.Abs(mc-exp[k]) > 0.01 {
			t.Fatalf("position %d: simulated %v vs expected %v", k, mc, exp[k])
		}
	}
}

func TestSimulateTermination(t *testing.T) {
	// ε = 1 everywhere: the session must end at the first click.
	d := testDCM(1)
	d.Termination = []float64{1, 1, 1, 1}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		clicks, left := d.Simulate(0, []int{0, 1, 2, 3}, rng)
		n := 0
		for _, c := range clicks {
			if c {
				n++
			}
		}
		if n > 1 {
			t.Fatal("more than one click with certain termination")
		}
		if n == 1 && left == len(clicks) {
			t.Fatal("clicked but reported full scan")
		}
	}
}

func TestSatisfactionMonotoneInK(t *testing.T) {
	d := testDCM(0.6)
	list := []int{0, 1, 2, 3}
	prev := 0.0
	for k := 1; k <= 4; k++ {
		s := d.Satisfaction(0, list, k)
		if s < prev-1e-12 || s < 0 || s > 1 {
			t.Fatalf("satisfaction not monotone/bounded: k=%d s=%v prev=%v", k, s, prev)
		}
		prev = s
	}
	// k beyond the list length saturates.
	if d.Satisfaction(0, list, 10) != d.Satisfaction(0, list, 4) {
		t.Fatal("satisfaction beyond list length changed")
	}
}

func TestDefaultTermination(t *testing.T) {
	eps := DefaultTermination(10, 0.8, 0.9)
	for i := 1; i < len(eps); i++ {
		if eps[i] > eps[i-1] {
			t.Fatal("termination not non-increasing")
		}
	}
	for _, e := range eps {
		if e < 0.05 || e > 0.95 {
			t.Fatalf("termination %v outside clamp", e)
		}
	}
}

func TestEstimateRecoversAttraction(t *testing.T) {
	// Pure-relevance DCM: the counting estimator must recover per-item
	// attraction within sampling error.
	d := testDCM(1.0)
	rng := rand.New(rand.NewSource(11))
	var logs []Session
	for i := 0; i < 30000; i++ {
		list := rng.Perm(4)
		clicks, _ := d.Simulate(0, list, rng)
		logs = append(logs, Session{User: 0, List: list, Clicks: clicks})
	}
	est := Estimate(logs, 1.0, 2, d.Cover, 4)
	for v, want := range map[int]float64{0: 0.8, 1: 0.6, 2: 0.4, 3: 0.2} {
		if math.Abs(est.Alpha[v]-want) > 0.05 {
			t.Fatalf("alpha[%d] = %v, want ≈%v", v, est.Alpha[v], want)
		}
	}
	// Termination estimates live in (0, 1) and are sane at position 0.
	if est.Eps[0] < 0.3 || est.Eps[0] > 0.7 {
		t.Fatalf("eps[0] = %v, want ≈0.5", est.Eps[0])
	}
}

func TestEstimateRhoImprovesLikelihood(t *testing.T) {
	d := testDCM(0.5)
	rng := rand.New(rand.NewSource(13))
	var logs []Session
	for i := 0; i < 4000; i++ {
		list := rng.Perm(4)
		clicks, _ := d.Simulate(0, list, rng)
		logs = append(logs, Session{User: 0, List: list, Clicks: clicks})
	}
	est := Estimate(logs, 0.5, 2, d.Cover, 4)
	withRho := est.LogLikelihood(logs)
	noRho := &Estimated{Alpha: est.Alpha, Eps: est.Eps, Rho: map[int][]float64{}, Lambda: 0.5, Topics: 2, Cover: d.Cover}
	without := noRho.LogLikelihood(logs)
	if withRho < without {
		t.Fatalf("fitted rho decreased log-likelihood: %v < %v", withRho, without)
	}
	// The fitted ρ should be positive on both topics (truth is 0.5, 0.5).
	rho := est.Rho[0]
	if rho == nil || rho[0] <= 0 || rho[1] <= 0 {
		t.Fatalf("rho = %v, want positive entries", rho)
	}
}

func TestEstimatedSatisfactionBounds(t *testing.T) {
	d := testDCM(0.8)
	rng := rand.New(rand.NewSource(17))
	var logs []Session
	for i := 0; i < 500; i++ {
		list := rng.Perm(4)
		clicks, _ := d.Simulate(0, list, rng)
		logs = append(logs, Session{User: 0, List: list, Clicks: clicks})
	}
	est := Estimate(logs, 0.8, 2, d.Cover, 4)
	for k := 1; k <= 4; k++ {
		s := est.Satisfaction(0, []int{0, 1, 2, 3}, k)
		if s < 0 || s > 1 {
			t.Fatalf("satis@%d = %v", k, s)
		}
	}
}
