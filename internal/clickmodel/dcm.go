// Package clickmodel implements the Dependent Click Model (DCM) used by the
// paper as the semi-synthetic click environment (Section IV-B1) and for the
// satis@k metric. The DCM supports multiple clicks per list: the user scans
// positions top-down, clicks position k with attraction probability φ̄(v_k),
// and after a click leaves with termination probability ε̄(k); without a
// click she always continues.
//
// Following the paper (and Hiranandani et al. / Li et al.), the attraction
// probability combines relevance and diversity:
//
//	φ̄(v_k) = λ·ᾱ(v_k) + (1−λ)·ρ̄ᵀζ(v_k)
//
// where ζ(v_k) is the incremental topic-coverage gain of v_k over the items
// placed above it and ρ̄ is a user-specific topic weight vector.
package clickmodel

import (
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/topics"
)

// DCM is a fully specified (ground truth) dependent click model over a
// universe of users and items.
type DCM struct {
	// Lambda is the relevance–diversity tradeoff λ ∈ [0,1]; λ=1 makes
	// clicks purely relevance-driven.
	Lambda float64
	// Relevance returns the item-relevance component ᾱ(u, v) ∈ [0,1].
	Relevance func(user, item int) float64
	// DivWeight returns the user's topic weight vector ρ̄(u); entries
	// should be non-negative and sum to at most 1 so that φ̄ stays in [0,1].
	DivWeight func(user int) []float64
	// Cover returns the topic coverage τ_v of an item.
	Cover func(item int) []float64
	// Termination holds ε̄(k) for positions k = 0…K−1 (non-increasing in
	// the paper's analysis). Positions past the slice reuse the last entry.
	Termination []float64
	// Topics is the number m of topics.
	Topics int
}

// Epsilon returns ε̄ at 0-based position k.
func (d *DCM) Epsilon(k int) float64 {
	if len(d.Termination) == 0 {
		return 0
	}
	if k >= len(d.Termination) {
		return d.Termination[len(d.Termination)-1]
	}
	return d.Termination[k]
}

// Attractions returns the position-dependent attraction probabilities
// φ̄(v_k) for every position of the list, accounting for the incremental
// diversity term. The result has length len(list) with entries in [0,1].
func (d *DCM) Attractions(user int, list []int) []float64 {
	phi := make([]float64, len(list))
	rho := d.DivWeight(user)
	ic := topics.NewIncrementalCoverage(d.Topics)
	for k, v := range list {
		tau := d.Cover(v)
		zeta := ic.Gain(tau)
		div := mat.Dot(rho, zeta)
		phi[k] = mat.Clamp(d.Lambda*d.Relevance(user, v)+(1-d.Lambda)*div, 0, 1)
		ic.Add(tau)
	}
	return phi
}

// Simulate draws one DCM click realization for the list. It returns the
// click indicators and the 0-based position after which the user left
// (len(list) if she scanned everything).
func (d *DCM) Simulate(user int, list []int, rng *rand.Rand) (clicks []bool, leftAfter int) {
	phi := d.Attractions(user, list)
	clicks = make([]bool, len(list))
	for k := range list {
		if rng.Float64() < phi[k] {
			clicks[k] = true
			if rng.Float64() < d.Epsilon(k) {
				return clicks, k
			}
		}
	}
	return clicks, len(list)
}

// ExpectedClicks returns, for each position, the exact probability that the
// item is clicked: φ̄(v_k)·P(position k is examined), where examination of
// position k+1 requires not (click ∧ terminate) at every earlier position.
// Using the exact expectation instead of sampled clicks makes evaluation
// deterministic — equivalent to averaging infinitely many simulations.
func (d *DCM) ExpectedClicks(user int, list []int) []float64 {
	phi := d.Attractions(user, list)
	out := make([]float64, len(list))
	examine := 1.0
	for k := range list {
		out[k] = examine * phi[k]
		examine *= 1 - phi[k]*d.Epsilon(k)
	}
	return out
}

// Satisfaction returns the paper's satis metric for the top-k prefix:
// 1 − Π_{i≤k} (1 − ε̄(i)·φ̄(v_i)) — the probability that the user leaves
// satisfied within the first k positions.
func (d *DCM) Satisfaction(user int, list []int, k int) float64 {
	phi := d.Attractions(user, list)
	if k > len(list) {
		k = len(list)
	}
	prod := 1.0
	for i := 0; i < k; i++ {
		prod *= 1 - d.Epsilon(i)*phi[i]
	}
	return 1 - prod
}

// DefaultTermination builds the geometric-style non-increasing termination
// profile used by the experiment harness: ε̄(k) = base·decay^k clamped to
// [0.05, 0.95]. The paper only requires ε̄ non-increasing in position.
func DefaultTermination(k int, base, decay float64) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = mat.Clamp(base*math.Pow(decay, float64(i)), 0.05, 0.95)
	}
	return out
}
