package clickmodel

import (
	"math"
	"math/rand"
	"testing"
)

// simSessions draws n sessions from the test DCM with permuted lists.
func simSessions(t *testing.T, n int, seed int64) []Session {
	t.Helper()
	d := testDCM(1.0)
	rng := rand.New(rand.NewSource(seed))
	logs := make([]Session, 0, n)
	for i := 0; i < n; i++ {
		list := rng.Perm(4)
		clicks, _ := d.Simulate(0, list, rng)
		logs = append(logs, Session{User: 0, List: list, Clicks: clicks})
	}
	return logs
}

// assertEstimatesClose compares the fitted parameters of two estimates to a
// tolerance. The incremental EM reorders floating-point summation relative to
// the batch EM, so "equivalence" means agreement to ~1e-9, not bit equality.
func assertEstimatesClose(t *testing.T, got, want *Estimated, tol float64) {
	t.Helper()
	if len(got.Alpha) != len(want.Alpha) {
		t.Fatalf("alpha support differs: %d vs %d items", len(got.Alpha), len(want.Alpha))
	}
	for v, w := range want.Alpha {
		g, ok := got.Alpha[v]
		if !ok {
			t.Fatalf("alpha missing item %d", v)
		}
		if math.Abs(g-w) > tol {
			t.Fatalf("alpha[%d] = %.15f, batch %.15f (|Δ| %.2e > %.0e)", v, g, w, math.Abs(g-w), tol)
		}
	}
	if len(got.Eps) != len(want.Eps) {
		t.Fatalf("eps length %d vs %d", len(got.Eps), len(want.Eps))
	}
	for k := range want.Eps {
		if math.Abs(got.Eps[k]-want.Eps[k]) > tol {
			t.Fatalf("eps[%d] = %.15f, batch %.15f", k, got.Eps[k], want.Eps[k])
		}
	}
}

// TestIncrementalMatchesBatch is the core equivalence contract: streaming the
// same sessions one at a time and estimating must reproduce the batch λ=1 EM.
func TestIncrementalMatchesBatch(t *testing.T) {
	const maxLen = 4
	logs := simSessions(t, 5000, 17)
	batch := Estimate(logs, 1.0, 2, nil, maxLen)

	inc := NewIncremental(maxLen)
	for _, s := range logs {
		inc.Add(s)
	}
	assertEstimatesClose(t, inc.Estimate(2, nil), batch, 1e-9)
}

// TestIncrementalOrderInvariance: sufficient statistics are sums, so the
// arrival order of sessions must not change the fit beyond FP noise.
func TestIncrementalOrderInvariance(t *testing.T) {
	const maxLen = 4
	logs := simSessions(t, 2000, 29)

	fwd := NewIncremental(maxLen)
	for _, s := range logs {
		fwd.Add(s)
	}
	rev := NewIncremental(maxLen)
	for i := len(logs) - 1; i >= 0; i-- {
		rev.Add(logs[i])
	}
	assertEstimatesClose(t, rev.Estimate(2, nil), fwd.Estimate(2, nil), 1e-9)
}

// TestIncrementalChunkedMatchesBatch models the trainer's actual usage:
// absorb events in several replay steps, estimating between them. Interleaved
// Estimate calls must not perturb the statistics.
func TestIncrementalChunkedMatchesBatch(t *testing.T) {
	const maxLen = 4
	logs := simSessions(t, 3000, 41)
	batch := Estimate(logs, 1.0, 2, nil, maxLen)

	inc := NewIncremental(maxLen)
	for i, s := range logs {
		inc.Add(s)
		if i == 999 || i == 1999 {
			inc.Estimate(2, nil) // mid-stream estimate, result discarded
		}
	}
	assertEstimatesClose(t, inc.Estimate(2, nil), batch, 1e-9)
	if inc.Sessions() != int64(len(logs)) {
		t.Fatalf("sessions = %d, want %d", inc.Sessions(), len(logs))
	}
}

// TestIncrementalCompact: folding residuals bounds memory, keeps the session
// and click counters intact, and only perturbs the fit slightly (the folded
// sessions freeze their termination posterior at the latest estimate).
func TestIncrementalCompact(t *testing.T) {
	const maxLen = 4
	logs := simSessions(t, 4000, 53)

	exact := NewIncremental(maxLen)
	folded := NewIncremental(maxLen)
	for _, s := range logs {
		exact.Add(s)
		folded.Add(s)
	}
	want := exact.Estimate(2, nil)

	folded.Estimate(2, nil) // give Compact a converged posterior to freeze
	n := folded.Compact(100)
	if n <= 0 {
		t.Fatalf("compact folded %d residuals, want > 0", n)
	}
	if folded.Residuals() != 100 {
		t.Fatalf("residual window = %d, want 100", folded.Residuals())
	}
	if folded.Compacted() != int64(n) {
		t.Fatalf("compacted counter = %d, want %d", folded.Compacted(), n)
	}
	if folded.Sessions() != exact.Sessions() || folded.Clicks() != exact.Clicks() {
		t.Fatal("compact must not lose session or click counts")
	}
	// A second compact to the same bound is a no-op.
	if again := folded.Compact(100); again != 0 {
		t.Fatalf("idempotent compact folded %d more", again)
	}

	// Because the posterior was converged when frozen, the approximate fit
	// stays close to the exact one — loose tolerance, this is approximation
	// quality, not equivalence.
	assertEstimatesClose(t, folded.Estimate(2, nil), want, 2e-2)
}

// TestIncrementalNoClickSessionsStreamFully: sessions without clicks leave no
// residual, so an all-skip log needs zero residual memory.
func TestIncrementalNoClickSessions(t *testing.T) {
	inc := NewIncremental(4)
	for i := 0; i < 100; i++ {
		inc.Add(Session{User: 0, List: []int{0, 1, 2, 3}, Clicks: []bool{false, false, false, false}})
	}
	if inc.Residuals() != 0 {
		t.Fatalf("no-click sessions retained %d residuals", inc.Residuals())
	}
	est := inc.Estimate(2, nil)
	// 100 examinations, 0 clicks: alpha is the Laplace floor 0.5/101.
	want := 0.5 / 101
	for v := 0; v < 4; v++ {
		if math.Abs(est.Alpha[v]-want) > 1e-12 {
			t.Fatalf("alpha[%d] = %v, want Laplace floor %v", v, est.Alpha[v], want)
		}
	}
}
