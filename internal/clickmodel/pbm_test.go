package clickmodel

import (
	"math"
	"math/rand"
	"testing"
)

func testPBM(lambda float64) *PBM {
	rel := map[int]float64{0: 0.8, 1: 0.6, 2: 0.4, 3: 0.2}
	cover := map[int][]float64{
		0: {1, 0}, 1: {1, 0}, 2: {0, 1}, 3: {0, 1},
	}
	return &PBM{
		Lambda:      lambda,
		Relevance:   func(_, v int) float64 { return rel[v] },
		DivWeight:   func(int) []float64 { return []float64{0.5, 0.5} },
		Cover:       func(v int) []float64 { return cover[v] },
		Topics:      2,
		Examination: DefaultExamination(4, 0.7),
	}
}

func TestPBMGamma(t *testing.T) {
	p := testPBM(1)
	if p.Gamma(0) != 1 {
		t.Fatalf("gamma(0) = %v", p.Gamma(0))
	}
	if p.Gamma(1) >= p.Gamma(0) {
		t.Fatal("examination should decay with position")
	}
	if p.Gamma(99) != p.Gamma(3) {
		t.Fatal("out-of-range gamma should reuse the last entry")
	}
	empty := &PBM{}
	if empty.Gamma(0) != 1 {
		t.Fatal("empty examination should default to 1")
	}
}

func TestPBMAttractionMatchesDCM(t *testing.T) {
	// The attraction model is shared with the DCM by construction.
	p := testPBM(0.5)
	d := testDCM(0.5)
	list := []int{0, 2, 1, 3}
	pa := p.Attractions(0, list)
	da := d.Attractions(0, list)
	for k := range list {
		if math.Abs(pa[k]-da[k]) > 1e-12 {
			t.Fatalf("attraction mismatch at %d: %v vs %v", k, pa[k], da[k])
		}
	}
}

func TestPBMExpectedClicksMatchesSimulation(t *testing.T) {
	p := testPBM(0.7)
	list := []int{0, 2, 1, 3}
	exp := p.ExpectedClicks(0, list)
	rng := rand.New(rand.NewSource(3))
	const n = 100000
	counts := make([]float64, len(list))
	for i := 0; i < n; i++ {
		for k, c := range p.Simulate(0, list, rng) {
			if c {
				counts[k]++
			}
		}
	}
	for k := range list {
		if math.Abs(counts[k]/n-exp[k]) > 0.01 {
			t.Fatalf("position %d: simulated %v vs expected %v", k, counts[k]/n, exp[k])
		}
	}
}

func TestPBMPositionDecayRewardsGoodOrder(t *testing.T) {
	// Placing the most attractive item first must increase total expected
	// clicks under a decaying examination curve.
	p := testPBM(1)
	good := p.ExpectedClicks(0, []int{0, 1, 2, 3})
	bad := p.ExpectedClicks(0, []int{3, 2, 1, 0})
	var sg, sb float64
	for k := range good {
		sg += good[k]
		sb += bad[k]
	}
	if sg <= sb {
		t.Fatalf("descending order %v not better than ascending %v", sg, sb)
	}
}

func TestDefaultExamination(t *testing.T) {
	g := DefaultExamination(5, 1)
	if g[0] != 1 || math.Abs(g[4]-0.2) > 1e-12 {
		t.Fatalf("examination curve %v", g)
	}
}
