package clickmodel

import (
	"repro/internal/mat"
)

// Incremental maintains DCM sufficient statistics session by session, so the
// online feedback loop can re-estimate (α̃, ε̃) from a replayed click log
// without holding the raw sessions. It is the streaming form of Estimate's
// λ=1 EM (Guo et al. 2009) and is equivalence-tested against it.
//
// What streams exactly and what must be retained follows from the shape of
// the EM: per iteration, the E-step needs one number per session — the
// posterior termination probability at its last click, which depends only on
// (last-click position, the items after it) and the current (α̃, ε̃) — while
// the M-step tallies are otherwise parameter-free:
//
//   - click counts per item and per position are EM-invariant → streamed;
//   - examination weight 1 for every position up to the last click (and for
//     whole no-click sessions) is EM-invariant → streamed into examsBase;
//   - only the tail (positions after the last click) carries the
//     parameter-dependent weight 1−pTerm → each clicked session leaves a
//     compact residual {last, tail items}, and Estimate re-runs the exact EM
//     over those residuals.
//
// A session with no clicks is fully absorbed at Add time; a clicked session
// keeps only its tail. Estimate therefore reproduces Estimate's batch fit
// bit-for-bit up to floating-point summation order. Residual memory grows
// with clicked sessions; Compact folds the oldest residuals into the
// streamed aggregates using the latest parameter estimates — after that the
// fit is approximate for the folded sessions (documented in DESIGN.md), so
// equivalence tests never compact.
type Incremental struct {
	maxLen    int
	sessions  int64
	clicks    int64
	compacted int64

	clicksOf  map[int]float64 // exact per-item click counts
	examsBase map[int]float64 // exam weight 1 contributions (EM-invariant)
	clicksAt  []float64       // exact per-position click counts (≤ maxLen)
	termBase  []float64       // folded-in termAt mass from Compact

	residuals []residual

	// Last published estimate, reused by Compact to fold residuals.
	lastAlpha map[int]float64
	lastEps   []float64
}

// residual is the parameter-dependent remainder of one clicked session.
type residual struct {
	last int32
	tail []int32
}

// NewIncremental builds an empty estimator with position horizon maxLen
// (the length of the fitted ε̃ vector, as in Estimate).
func NewIncremental(maxLen int) *Incremental {
	return &Incremental{
		maxLen:    maxLen,
		clicksOf:  make(map[int]float64),
		examsBase: make(map[int]float64),
		clicksAt:  make([]float64, maxLen),
		termBase:  make([]float64, maxLen),
	}
}

// Add folds one session into the sufficient statistics. O(len(List)); a
// clicked session additionally retains its post-last-click tail.
func (in *Incremental) Add(s Session) {
	in.sessions++
	last := lastClick(s.Clicks)
	for k, v := range s.List {
		if last >= 0 && k > last {
			break
		}
		in.examsBase[v]++
		if k < len(s.Clicks) && s.Clicks[k] {
			in.clicksOf[v]++
			in.clicks++
			if k < in.maxLen {
				in.clicksAt[k]++
			}
		}
	}
	if last >= 0 {
		tail := make([]int32, len(s.List)-last-1)
		for i, v := range s.List[last+1:] {
			tail[i] = int32(v)
		}
		in.residuals = append(in.residuals, residual{last: int32(last), tail: tail})
	}
}

// Sessions is the number of sessions absorbed so far.
func (in *Incremental) Sessions() int64 { return in.sessions }

// Clicks is the number of clicks absorbed so far.
func (in *Incremental) Clicks() int64 { return in.clicks }

// Residuals is the number of clicked sessions currently retained for exact
// EM refinement.
func (in *Incremental) Residuals() int { return len(in.residuals) }

// Compacted is the number of sessions folded out of the exact-EM window.
func (in *Incremental) Compacted() int64 { return in.compacted }

// naiveAlpha is the EM initialization: Laplace-smoothed click-through over
// naive examinations, identical to Estimate's starting point.
func (in *Incremental) naiveAlpha() map[int]float64 {
	alpha := make(map[int]float64, len(in.examsBase))
	for v, ex := range in.examsBase {
		alpha[v] = (in.clicksOf[v] + 0.5) / (ex + 1)
	}
	return alpha
}

// pTerm is the E-step posterior that a session terminated at its last click,
// given the current parameters — shared by Estimate and Compact.
func pTerm(r residual, alpha map[int]float64, eps []float64, maxLen int) float64 {
	cont := 1.0
	for _, v := range r.tail {
		cont *= 1 - alpha[int(v)]
	}
	e := eps[min(int(r.last), maxLen-1)]
	return e / (e + (1-e)*cont + 1e-12)
}

// Estimate runs the exact EM over the streamed aggregates plus the retained
// residuals and returns the fitted parameters. With an uncompacted estimator
// the result matches Estimate(logs, 1, m, cover, maxLen) on the same
// sessions up to floating-point summation order. The per-user diversity
// weight ρ̃ is not fitted — the feedback log records item ids and clicks,
// not topic coverage, so the online loop re-estimates under λ=1 (see
// DESIGN.md); cover may be nil (items then resolve to zero coverage).
func (in *Incremental) Estimate(m int, cover func(item int) []float64) *Estimated {
	if cover == nil {
		zero := make([]float64, m)
		cover = func(int) []float64 { return zero }
	}
	e := &Estimated{
		Alpha:  in.naiveAlpha(),
		Eps:    make([]float64, in.maxLen),
		Rho:    make(map[int][]float64),
		Lambda: 1,
		Topics: m,
		Cover:  cover,
	}
	for k := range e.Eps {
		e.Eps[k] = 0.5
	}
	for iter := 0; iter < 6; iter++ {
		exams := make(map[int]float64, len(in.examsBase))
		for v, ex := range in.examsBase {
			exams[v] = ex
		}
		termAt := make([]float64, in.maxLen)
		copy(termAt, in.termBase)
		for _, r := range in.residuals {
			pt := pTerm(r, e.Alpha, e.Eps, in.maxLen)
			for _, v := range r.tail {
				exams[int(v)] += 1 - pt
			}
			if int(r.last) < in.maxLen {
				termAt[r.last] += pt
			}
		}
		for v, ex := range exams {
			e.Alpha[v] = (in.clicksOf[v] + 0.5) / (ex + 1)
		}
		for k := 0; k < in.maxLen; k++ {
			if in.clicksAt[k] > 0 {
				e.Eps[k] = mat.Clamp((termAt[k]+0.5)/(in.clicksAt[k]+1), 0.01, 0.99)
			}
		}
	}
	in.lastAlpha = e.Alpha
	in.lastEps = e.Eps
	return e
}

// Compact bounds residual memory: when more than maxResiduals clicked
// sessions are retained, the oldest are folded into the streamed aggregates
// using their E-step posterior under the latest estimate (or the naive
// initialization if Estimate has not run). Folded sessions stop
// participating in future E-steps — their termination posterior is frozen —
// so the fit becomes approximate for them while remaining exact for the
// retained window. Returns the number of residuals folded.
func (in *Incremental) Compact(maxResiduals int) int {
	if maxResiduals < 0 {
		maxResiduals = 0
	}
	n := len(in.residuals) - maxResiduals
	if n <= 0 {
		return 0
	}
	alpha, eps := in.lastAlpha, in.lastEps
	if alpha == nil {
		alpha = in.naiveAlpha()
	}
	if eps == nil {
		eps = make([]float64, in.maxLen)
		for k := range eps {
			eps[k] = 0.5
		}
	}
	for _, r := range in.residuals[:n] {
		pt := pTerm(r, alpha, eps, in.maxLen)
		for _, v := range r.tail {
			in.examsBase[int(v)] += 1 - pt
		}
		if int(r.last) < in.maxLen {
			in.termBase[r.last] += pt
		}
	}
	in.residuals = append(in.residuals[:0], in.residuals[n:]...)
	in.compacted += int64(n)
	return n
}
