package clickmodel

import (
	"math"

	"repro/internal/mat"
	"repro/internal/topics"
)

// Session is one logged impression: a displayed list and the observed
// clicks, for a given user.
type Session struct {
	User   int
	List   []int
	Clicks []bool
}

// Estimated holds DCM parameters fitted from click logs by maximum
// likelihood, mirroring the estimation step of Section IV-B1 (the paper
// fits ᾱ, ρ̄, ε̄ on the raw logs before using the DCM as the environment).
type Estimated struct {
	// Alpha is the per-item attraction estimate α̃.
	Alpha map[int]float64
	// Eps is the per-position termination estimate ε̃.
	Eps []float64
	// Rho is the per-user diversity weight estimate ρ̃ (nil if the fit was
	// run with lambda = 1).
	Rho map[int][]float64
	// Lambda is the tradeoff the model was fitted under.
	Lambda float64
	// Topics is m.
	Topics int
	// Cover resolves item coverage (shared with the generator).
	Cover func(item int) []float64
}

// Estimate fits DCM parameters on logs. The procedure follows Guo et al.
// (2009): positions up to (and including) the last click are treated as
// examined; α̃_v is the fraction of examinations of v that were clicked;
// ε̃(k) is the fraction of clicks at position k that ended the session.
// When lambda < 1 a per-user ρ̃ is fitted by projected gradient ascent on
// the Bernoulli likelihood of clicks given examination.
func Estimate(logs []Session, lambda float64, m int, cover func(item int) []float64, maxLen int) *Estimated {
	e := &Estimated{
		Alpha:  make(map[int]float64),
		Eps:    make([]float64, maxLen),
		Rho:    make(map[int][]float64),
		Lambda: lambda,
		Topics: m,
		Cover:  cover,
	}
	// Whether the user terminated at the last click is unobserved (she may
	// have continued and simply clicked nothing else), so (α, ε) are fitted
	// jointly by EM. Initialization: naive counting that treats positions
	// up to the last click as examined.
	for k := range e.Eps {
		e.Eps[k] = 0.5
	}
	clicksOf := make(map[int]float64)
	examsOf := make(map[int]float64)
	for _, s := range logs {
		last := lastClick(s.Clicks)
		for k, v := range s.List {
			if last >= 0 && k > last {
				break
			}
			examsOf[v]++
			if k < len(s.Clicks) && s.Clicks[k] {
				clicksOf[v]++
			}
		}
	}
	setAlpha := func() {
		for v, ex := range examsOf {
			// Laplace smoothing keeps unseen/rare items away from 0 and 1.
			e.Alpha[v] = (clicksOf[v] + 0.5) / (ex + 1)
		}
	}
	setAlpha()

	for iter := 0; iter < 6; iter++ {
		clear(clicksOf)
		clear(examsOf)
		termAt := make([]float64, maxLen)
		clicksAt := make([]float64, maxLen)
		for _, s := range logs {
			last := lastClick(s.Clicks)
			// E-step: posterior that the session ended at the last click,
			// given that no later position was clicked:
			// P(term) ∝ ε(last); P(cont) ∝ (1−ε(last))·Π_{k>last}(1−α).
			cont := 1.0
			pTerm := 0.0
			if last >= 0 {
				for k := last + 1; k < len(s.List); k++ {
					cont *= 1 - e.Alpha[s.List[k]]
				}
				eps := e.Eps[min(last, maxLen-1)]
				pTerm = eps / (eps + (1-eps)*cont + 1e-12)
			}
			// M-step accumulation with fractional examinations.
			for k, v := range s.List {
				w := 1.0
				if last >= 0 && k > last {
					w = 1 - pTerm
				}
				examsOf[v] += w
				if k < len(s.Clicks) && s.Clicks[k] {
					clicksOf[v]++
					if k < maxLen {
						clicksAt[k]++
						if k == last {
							termAt[k] += pTerm
						}
					}
				}
			}
		}
		setAlpha()
		for k := 0; k < maxLen; k++ {
			if clicksAt[k] > 0 {
				e.Eps[k] = mat.Clamp((termAt[k]+0.5)/(clicksAt[k]+1), 0.01, 0.99)
			}
		}
	}
	if lambda < 1 {
		e.fitRho(logs)
	}
	return e
}

// fitRho runs a few epochs of projected gradient ascent per user on
// log-likelihood Σ y·log φ + (1−y)·log(1−φ) with φ = λα̃ + (1−λ)ρᵀζ,
// keeping ρ on the simplex scaled to [0,1]^m with Σρ ≤ 1.
func (e *Estimated) fitRho(logs []Session) {
	byUser := make(map[int][]Session)
	for _, s := range logs {
		byUser[s.User] = append(byUser[s.User], s)
	}
	for u, sessions := range byUser {
		rho := make([]float64, e.Topics)
		for j := range rho {
			rho[j] = 0.5 / float64(e.Topics)
		}
		const lr = 0.1
		for epoch := 0; epoch < 30; epoch++ {
			grad := make([]float64, e.Topics)
			for _, s := range sessions {
				ic := topics.NewIncrementalCoverage(e.Topics)
				last := lastClick(s.Clicks)
				for k, v := range s.List {
					tau := e.Cover(v)
					zeta := ic.Gain(tau)
					ic.Add(tau)
					if last >= 0 && k > last {
						break
					}
					phi := mat.Clamp(e.Lambda*e.Alpha[v]+(1-e.Lambda)*mat.Dot(rho, zeta), 1e-4, 1-1e-4)
					y := 0.0
					if k < len(s.Clicks) && s.Clicks[k] {
						y = 1
					}
					// d/dρ of the Bernoulli log-likelihood.
					coef := (y/phi - (1-y)/(1-phi)) * (1 - e.Lambda)
					for j, z := range zeta {
						grad[j] += coef * z
					}
				}
			}
			for j := range rho {
				rho[j] = mat.Clamp(rho[j]+lr*grad[j]/float64(len(sessions)+1), 0, 1)
			}
			// Project so Σρ ≤ 1 (keeps φ a probability).
			if s := mat.SumVec(rho); s > 1 {
				for j := range rho {
					rho[j] /= s
				}
			}
		}
		e.Rho[u] = rho
	}
}

func lastClick(clicks []bool) int {
	last := -1
	for k, c := range clicks {
		if c {
			last = k
		}
	}
	return last
}

// Attractions mirrors DCM.Attractions using the fitted parameters.
func (e *Estimated) Attractions(user int, list []int) []float64 {
	phi := make([]float64, len(list))
	rho := e.Rho[user]
	ic := topics.NewIncrementalCoverage(e.Topics)
	for k, v := range list {
		tau := e.Cover(v)
		zeta := ic.Gain(tau)
		div := 0.0
		if rho != nil {
			div = mat.Dot(rho, zeta)
		}
		phi[k] = mat.Clamp(e.Lambda*e.Alpha[v]+(1-e.Lambda)*div, 0, 1)
		ic.Add(tau)
	}
	return phi
}

// Satisfaction computes satis@k with the fitted φ̃ and ε̃.
func (e *Estimated) Satisfaction(user int, list []int, k int) float64 {
	phi := e.Attractions(user, list)
	if k > len(list) {
		k = len(list)
	}
	prod := 1.0
	for i := 0; i < k && i < len(phi); i++ {
		eps := 0.5
		if i < len(e.Eps) {
			eps = e.Eps[i]
		}
		prod *= 1 - eps*phi[i]
	}
	return 1 - prod
}

// LogLikelihood returns the DCM log-likelihood of the logs under the fitted
// parameters, useful for verifying that estimation improves the fit.
func (e *Estimated) LogLikelihood(logs []Session) float64 {
	var ll float64
	for _, s := range logs {
		phi := e.Attractions(s.User, s.List)
		last := lastClick(s.Clicks)
		for k := range s.List {
			if last >= 0 && k > last {
				break
			}
			p := mat.Clamp(phi[k], 1e-6, 1-1e-6)
			if k < len(s.Clicks) && s.Clicks[k] {
				ll += math.Log(p)
			} else {
				ll += math.Log(1 - p)
			}
		}
	}
	return ll
}
