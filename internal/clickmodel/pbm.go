package clickmodel

import (
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/topics"
)

// PBM is a Position-Based Model: each position k has an examination
// probability γ(k) independent of clicks, and the user clicks an examined
// item with the same diversity-aware attraction probability as the DCM.
// It serves as an alternative click environment for robustness checks —
// the paper's conclusions should not hinge on the DCM's
// termination-after-click mechanics.
type PBM struct {
	// Lambda, Relevance, DivWeight, Cover and Topics mirror DCM.
	Lambda    float64
	Relevance func(user, item int) float64
	DivWeight func(user int) []float64
	Cover     func(item int) []float64
	Topics    int
	// Examination holds γ(k) per position; positions beyond the slice
	// reuse the last entry.
	Examination []float64
}

// Gamma returns γ at 0-based position k.
func (p *PBM) Gamma(k int) float64 {
	if len(p.Examination) == 0 {
		return 1
	}
	if k >= len(p.Examination) {
		return p.Examination[len(p.Examination)-1]
	}
	return p.Examination[k]
}

// Attractions mirrors DCM.Attractions: position-dependent attraction with
// the incremental personalized diversity term.
func (p *PBM) Attractions(user int, list []int) []float64 {
	phi := make([]float64, len(list))
	rho := p.DivWeight(user)
	ic := topics.NewIncrementalCoverage(p.Topics)
	for k, v := range list {
		tau := p.Cover(v)
		zeta := ic.Gain(tau)
		phi[k] = mat.Clamp(p.Lambda*p.Relevance(user, v)+(1-p.Lambda)*mat.Dot(rho, zeta), 0, 1)
		ic.Add(tau)
	}
	return phi
}

// ExpectedClicks returns γ(k)·φ(v_k) per position.
func (p *PBM) ExpectedClicks(user int, list []int) []float64 {
	phi := p.Attractions(user, list)
	out := make([]float64, len(list))
	for k := range list {
		out[k] = p.Gamma(k) * phi[k]
	}
	return out
}

// Simulate draws one PBM click realization.
func (p *PBM) Simulate(user int, list []int, rng *rand.Rand) []bool {
	phi := p.Attractions(user, list)
	clicks := make([]bool, len(list))
	for k := range list {
		clicks[k] = rng.Float64() < p.Gamma(k)*phi[k]
	}
	return clicks
}

// DefaultExamination builds the standard 1/(k+1)^η examination curve.
func DefaultExamination(k int, eta float64) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = 1 / math.Pow(float64(i+1), eta)
	}
	return out
}
