package experiments

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rerank"
)

// TestGreedyOracleNearExhaustive validates Theorem 5.1's premise on real
// instances: the greedy oracle's expected clicks must be within the
// submodular approximation guarantee of the exact optimum, and in practice
// very close to it.
func TestGreedyOracleNearExhaustive(t *testing.T) {
	opt := tinyOptions(48)
	rd, err := cachedRankedData(dataset.TaobaoLike(48), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.5, opt)
	greedy := Oracle{env}
	exact := ExhaustiveOracle{Env: env, Limit: 6, K: 6}
	var gSum, eSum float64
	n := len(env.Test)
	if n > 10 {
		n = 10
	}
	for _, inst := range env.Test[:n] {
		gOrder := rerank.Apply(greedy, inst)
		eOrder := rerank.Apply(exact, inst)
		g := metrics.ClickAtK(env.DCM.ExpectedClicks(inst.User, gOrder), 6)
		e := metrics.ClickAtK(env.DCM.ExpectedClicks(inst.User, eOrder), 6)
		if g > e+1e-9 {
			t.Fatalf("greedy (%v) beat the exhaustive optimum (%v)?", g, e)
		}
		gSum += g
		eSum += e
	}
	if gSum < 0.95*eSum {
		t.Fatalf("greedy oracle captured only %.1f%% of the exact optimum", gSum/eSum*100)
	}
	t.Logf("greedy/exact expected-click ratio over %d requests: %.4f", n, gSum/eSum)
}

// TestExhaustiveOracleFullRanking checks the Reranker contract.
func TestExhaustiveOracleFullRanking(t *testing.T) {
	opt := tinyOptions(49)
	rd, err := cachedRankedData(dataset.TaobaoLike(49), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.9, opt)
	inst := env.Test[0]
	exact := ExhaustiveOracle{Env: env, Limit: 5}
	s := exact.Scores(inst)
	if len(s) != inst.L() {
		t.Fatalf("%d scores for %d items", len(s), inst.L())
	}
	seen := map[float64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate score — not a total order")
		}
		seen[v] = true
	}
}
