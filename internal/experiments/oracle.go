package experiments

import (
	"math"

	"repro/internal/rerank"
	"repro/internal/topics"
)

// Oracle is the skyline re-ranker: it greedily orders the list by the true
// DCM attraction probability (relevance plus the user's personalized
// marginal-diversity gain), which no learned model can beat in expectation.
// It exists for diagnostics and integration tests — the gap between Init
// and Oracle is the headroom the re-rankers compete for.
type Oracle struct {
	Env *Env
}

// Name implements rerank.Reranker.
func (o Oracle) Name() string { return "Oracle" }

// Scores implements rerank.Reranker: a greedy construction by true
// attraction, encoded as descending pseudo-scores.
func (o Oracle) Scores(inst *rerank.Instance) []float64 {
	d := o.Env.Data
	l := inst.L()
	rho := d.DivWeight(inst.User)
	lambda := o.Env.DCM.Lambda
	ic := topics.NewIncrementalCoverage(d.M())
	chosen := make([]bool, l)
	scores := make([]float64, l)
	for rank := 0; rank < l; rank++ {
		best, bestS := -1, math.Inf(-1)
		for i := 0; i < l; i++ {
			if chosen[i] {
				continue
			}
			gain := ic.Gain(inst.Cover[i])
			var div float64
			for j, g := range gain {
				div += rho[j] * g
			}
			s := lambda*d.Relevance(inst.User, inst.Items[i]) + (1-lambda)*div
			if s > bestS {
				best, bestS = i, s
			}
		}
		chosen[best] = true
		ic.Add(inst.Cover[best])
		scores[best] = float64(l - rank)
	}
	return scores
}
