package experiments

import (
	"fmt"

	"repro/internal/bandit"
	"repro/internal/plot"
)

// RegretOptions sizes the Theorem 5.1 simulation.
type RegretOptions struct {
	Rounds     int
	Checkpoint int
	Seed       int64
	// SScale shrinks the theorem's (conservative) exploration constant;
	// 0.05–0.2 makes the √n shape visible at small horizons.
	SScale float64
}

// DefaultRegretOptions returns the harness defaults.
func DefaultRegretOptions(seed int64) RegretOptions {
	return RegretOptions{Rounds: 4000, Checkpoint: 250, Seed: seed, SScale: 0.1}
}

// RunRegret empirically verifies Theorem 5.1: the γ-scaled cumulative
// regret of linear RAPID with UCB grows ≈ √n, and the ablations (greedy
// without exploration, non-personalized diversity) accumulate more regret.
func RunRegret(opt RegretOptions) (*Table, []bandit.RegretCurve) {
	newEnv := func() *bandit.Env {
		return bandit.NewEnv(8, 5, 5, 50, 200, 30, opt.Seed)
	}
	modes := []bandit.Mode{bandit.UCB, bandit.Greedy, bandit.NoPersonal, bandit.Thompson}
	curves := make([]bandit.RegretCurve, 0, len(modes))
	for _, mode := range modes {
		curves = append(curves, bandit.SimulateRegret(newEnv(), mode, opt.Rounds, opt.Checkpoint, opt.SScale))
	}
	header := []string{"rounds", curves[0].Mode.String(), "c·√n ref"}
	for _, c := range curves[1:] {
		header = append(header, c.Mode.String())
	}
	tbl := &Table{
		Title:  "Theorem 5.1 — cumulative utility regret vs rounds",
		Header: header,
	}
	for i, p := range curves[0].Points {
		row := []string{
			fmt.Sprintf("%d", p.Round),
			fmt.Sprintf("%.1f", p.CumRegret),
			fmt.Sprintf("%.1f", p.SqrtRef),
		}
		for _, c := range curves[1:] {
			if i < len(c.Points) {
				row = append(row, fmt.Sprintf("%.1f", c.Points[i].CumRegret))
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	note := "fitted growth exponents α (regret ≈ c·n^α):"
	for _, c := range curves {
		note += fmt.Sprintf(" %s %.2f,", c.Mode, c.Alpha)
	}
	tbl.Notes = []string{
		note[:len(note)-1],
		"Theorem 5.1 predicts α ≈ 0.5 for the UCB variant (Õ(√n)).",
	}
	return tbl, curves
}

// RegretChart renders the Theorem 5.1 figure: one line per algorithm plus
// the c·√n reference of the first (UCB) curve.
func RegretChart(curves []bandit.RegretCurve) *plot.Chart {
	chart := &plot.Chart{
		Title:  "Theorem 5.1 — cumulative utility regret",
		XLabel: "rounds n",
		YLabel: "cumulative regret",
	}
	for ci, c := range curves {
		s := plot.Series{Name: c.Mode.String()}
		for _, p := range c.Points {
			s.X = append(s.X, float64(p.Round))
			s.Y = append(s.Y, p.CumRegret)
		}
		chart.Series = append(chart.Series, s)
		if ci == 0 {
			ref := plot.Series{Name: "c·√n reference"}
			for _, p := range c.Points {
				ref.X = append(ref.X, float64(p.Round))
				ref.Y = append(ref.Y, p.SqrtRef)
			}
			chart.Series = append(chart.Series, ref)
		}
	}
	return chart
}
