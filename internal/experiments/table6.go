package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/rerank"
)

// RunTable6 reproduces Table VI, the efficiency study: total training time
// (train-all), average training time per batch (train-b) and average
// inference time per batch (test-b) for PRM, DESA and RAPID on all three
// datasets. Absolute numbers are CPU wall-clock — the paper's are GPU — so
// the comparison of interest is the relative ordering between models.
func RunTable6(opt Options) (*Table, error) {
	tbl := &Table{
		Title:  "Table VI — training and inference time",
		Header: []string{"model", "dataset", "train-all", "train-b (ms)", "test-b (ms)"},
		Notes: []string{
			"CPU wall-clock (paper: NVIDIA 3080 / V100); compare relative ordering, not absolutes.",
			fmt.Sprintf("batch size %d; train-all covers %d epochs", batchForTiming, maxEpochs(opt)),
		},
	}
	envs, err := allEnvs(opt)
	if err != nil {
		return nil, err
	}
	for _, env := range envs {
		for _, r := range BuildRerankers(env, opt, NeuralRoster) {
			ta, trb, teb, err := timeModel(env, r, opt)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(r.Name(), env.Data.Name,
				ta.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", trb), fmt.Sprintf("%.1f", teb))
		}
	}
	return tbl, nil
}

const batchForTiming = 16

func maxEpochs(opt Options) int {
	if opt.Epochs > 0 {
		return opt.Epochs
	}
	return 4
}

func allEnvs(opt Options) ([]*Env, error) {
	var envs []*Env
	for _, cfg := range publicDatasets(opt) {
		rd, err := cachedRankedData(cfg, "DIN", opt)
		if err != nil {
			return nil, err
		}
		envs = append(envs, BuildEnv(rd, 0.9, opt))
	}
	rd, err := cachedRankedData(dataset.AppStoreLike(opt.Seed), "DIN", opt)
	if err != nil {
		return nil, err
	}
	envs = append(envs, BuildEnv(rd, AppStoreLambda, opt))
	return envs, nil
}

// timeModel measures train-all (full Fit), train-b (one epoch's wall time
// divided by its batch count) and test-b (inference wall time per batch of
// test instances).
func timeModel(env *Env, r rerank.Reranker, opt Options) (trainAll time.Duration, trainBatchMS, testBatchMS float64, err error) {
	t, ok := r.(rerank.Trainable)
	if !ok {
		return 0, 0, 0, fmt.Errorf("experiments: %s is not trainable", r.Name())
	}
	start := time.Now()
	if err := t.Fit(env.Train); err != nil {
		return 0, 0, 0, err
	}
	trainAll = time.Since(start)
	batches := (len(env.Train) + batchForTiming - 1) / batchForTiming
	epochs := maxEpochs(opt)
	trainBatchMS = float64(trainAll.Milliseconds()) / float64(batches*epochs)

	start = time.Now()
	for _, inst := range env.Test {
		r.Scores(inst)
	}
	infer := time.Since(start)
	testBatches := (len(env.Test) + batchForTiming - 1) / batchForTiming
	testBatchMS = float64(infer.Microseconds()) / 1000 / float64(testBatches)
	return trainAll, trainBatchMS, testBatchMS, nil
}
