package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result, printable in the same row/column
// layout the paper reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are free-form lines appended below the table (significance
	// marks, protocol remarks).
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	return b.String()
}

// f4 formats a metric the way the paper's tables print them.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
