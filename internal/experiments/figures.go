package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/rerank"
)

// RunFig3 reproduces Figure 3, the ablation analysis: RAPID against
// RAPID-RNN (no personalized diversity estimator), RAPID-mean (mean
// aggregation instead of per-topic LSTMs), RAPID-det (deterministic head)
// and RAPID-trans (transformer listwise encoder), reporting click@10 and
// div@10 on both public datasets at λ = 0.9.
func RunFig3(opt Options) ([]*Table, error) {
	const lambda = 0.9
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"RAPID", nil},
		{"RAPID-RNN", func(c *core.Config) { c.UseDiversity = false }},
		{"RAPID-mean", func(c *core.Config) { c.Agg = core.MeanAgg }},
		{"RAPID-det", func(c *core.Config) { c.Output = core.Deterministic }},
		{"RAPID-trans", func(c *core.Config) { c.Encoder = core.TransformerEncoder }},
	}
	var tables []*Table
	for _, cfg := range publicDatasets(opt) {
		rd, err := cachedRankedData(cfg, "DIN", opt)
		if err != nil {
			return nil, err
		}
		env := BuildEnv(rd, lambda, opt)
		tbl := &Table{
			Title:  fmt.Sprintf("Figure 3 — ablation analysis on %s (λ=%.1f)", cfg.Name, lambda),
			Header: []string{"variant", "click@10", "div@10"},
		}
		for i, v := range variants {
			m := NewRAPID(env, opt, 12+int64(i), v.mutate)
			if err := env.FitIfTrainable(m, opt); err != nil {
				return nil, fmt.Errorf("experiments: fit %s: %w", v.name, err)
			}
			res := env.Evaluate(m, []int{10})
			tbl.AddRow(v.name, f4(res.Mean("click@10")), f4(res.Mean("div@10")))
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// RunFig4 reproduces Figure 4, the hidden-size study: RAPID with
// q_h ∈ {8, 16, 32, 64} on the two public datasets (λ = 0.9) and App Store.
func RunFig4(opt Options) ([]*Table, error) {
	envs, err := allEnvs(opt)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, env := range envs {
		tbl := &Table{
			Title:  fmt.Sprintf("Figure 4 — hidden size study on %s", env.Data.Name),
			Header: []string{"hidden", "click@10", "div@10"},
		}
		for i, h := range []int{8, 16, 32, 64} {
			m := NewRAPID(env, opt, 20+int64(i), func(c *core.Config) { c.Hidden = h })
			if err := env.FitIfTrainable(m, opt); err != nil {
				return nil, fmt.Errorf("experiments: fit hidden=%d: %w", h, err)
			}
			res := env.Evaluate(m, []int{10})
			tbl.AddRow(fmt.Sprintf("%d", h), f4(res.Mean("click@10")), f4(res.Mean("div@10")))
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// RunFig5 reproduces the Figure 5 case study: one diverse and one focused
// user from the MovieLens-like dataset, showing the topic distribution of
// their history, RAPID's learned preference θ̂, and the topics of RAPID's
// top-10 — demonstrating that diversification follows personal preference.
func RunFig5(opt Options) (*Table, error) {
	cfg := dataset.MovieLensLike(opt.Seed)
	rd, err := cachedRankedData(cfg, "DIN", opt)
	if err != nil {
		return nil, err
	}
	env := BuildEnv(rd, 0.9, opt)
	m := NewRAPID(env, opt, 12, nil)
	if err := env.FitIfTrainable(m, opt); err != nil {
		return nil, err
	}
	diverse, focused := pickCaseUsers(env)
	if diverse == nil || focused == nil {
		return nil, fmt.Errorf("experiments: could not find case-study users")
	}
	tbl := &Table{
		Title:  "Figure 5 — case study: topic distributions (history vs RAPID top-10)",
		Header: []string{"user", "kind", "history entropy", "history topics", "θ̂ top topics", "top-10 topics"},
	}
	for _, c := range []struct {
		inst *rerank.Instance
		kind string
	}{{diverse, "diverse"}, {focused, "focused"}} {
		hist := c.inst.HistoryPreference()
		theta := m.Preference(c.inst)
		ranked := rerank.Apply(m, c.inst)[:10]
		recCover := make([][]float64, len(ranked))
		for i, v := range ranked {
			recCover[i] = env.Data.Cover(v)
		}
		recPref := averageRows(recCover)
		tbl.AddRow(
			fmt.Sprintf("%d", c.inst.User), c.kind,
			fmt.Sprintf("%.3f", mat.Entropy(hist)/math.Log(float64(c.inst.M))),
			topTopics(hist, 4), topTopics(theta, 4), topTopics(recPref, 4),
		)
	}
	tbl.Notes = []string{
		"A diverse user's recommendation spreads over their many favored topics;",
		"a focused user's stays concentrated — diversification follows the personal preference.",
	}
	return tbl, nil
}

// pickCaseUsers selects the highest- and lowest-entropy test users.
func pickCaseUsers(env *Env) (diverse, focused *rerank.Instance) {
	var hi, lo float64 = -1, math.Inf(1)
	for _, inst := range env.Test {
		h := mat.Entropy(inst.HistoryPreference())
		if h > hi {
			hi, diverse = h, inst
		}
		if h < lo {
			lo, focused = h, inst
		}
	}
	return diverse, focused
}

func averageRows(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		for j, v := range r {
			out[j] += v
		}
	}
	return mat.Normalize(out)
}

// topTopics renders the k largest entries of a distribution as
// "topic:weight" pairs.
func topTopics(p []float64, k int) string {
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p[idx[a]] > p[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	s := ""
	for i := 0; i < k; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("t%d:%.2f", idx[i], p[idx[i]])
	}
	return s
}
