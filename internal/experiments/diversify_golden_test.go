package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the cross-evaluation golden table")

// TestDiversifyCrossEvalGolden pins the full cross-evaluation report — RAPID
// plus the four classic diversifiers over the three dataset generators at
// smoke scale — to a committed golden table. The pipeline is deterministic
// end to end (seeded data, seeded training, expected-click evaluation,
// serial exposure accumulation), so any drift in a diversifier, a metric, or
// the harness shows up as a diff here. Refresh with:
//
//	go test ./internal/experiments -run TestDiversifyCrossEvalGolden -update
func TestDiversifyCrossEvalGolden(t *testing.T) {
	tbl, err := RunDiversifyCrossEval(tinyOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	got := tbl.String()

	wantDatasets := 3
	wantRerankers := 5 // RAPID-pro + bswap, dpp, mmr, window
	if len(tbl.Rows) != wantDatasets*wantRerankers {
		t.Fatalf("cross-eval table has %d rows, want %d datasets x %d rerankers",
			len(tbl.Rows), wantDatasets, wantRerankers)
	}
	for _, name := range []string{"RAPID-pro", "div-mmr", "div-dpp", "div-bswap", "div-window"} {
		if !strings.Contains(got, name) {
			t.Fatalf("cross-eval table missing reranker %q:\n%s", name, got)
		}
	}

	golden := filepath.Join("testdata", "crosseval_diversify.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("cross-eval table drifted from golden (refresh with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
