package experiments

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/topics"
)

// TestDiagAttraction prints the relevance/diversity composition of the DCM
// attraction on the initial lists — a generator-calibration diagnostic.
func TestDiagAttraction(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = 0.25
	for _, cfg := range []dataset.Config{dataset.TaobaoLike(42), dataset.MovieLensLike(42)} {
		rd, err := cachedRankedData(cfg, "DIN", opt)
		if err != nil {
			t.Fatal(err)
		}
		env := BuildEnv(rd, 0.5, opt)
		d := env.Data
		var relSum, divSum, maxCov, nItems float64
		var firstGain, laterGain, nFirst, nLater float64
		for _, inst := range env.Test {
			rho := d.DivWeight(inst.User)
			ic := topics.NewIncrementalCoverage(d.M())
			for i, v := range inst.Items {
				rel := d.Relevance(inst.User, v)
				gain := ic.Gain(inst.Cover[i])
				div := mat.Dot(rho, gain)
				relSum += rel
				divSum += div
				mx := 0.0
				for _, c := range inst.Cover[i] {
					if c > mx {
						mx = c
					}
				}
				maxCov += mx
				nItems++
				if i < 5 {
					firstGain += div
					nFirst++
				} else {
					laterGain += div
					nLater++
				}
				ic.Add(inst.Cover[i])
			}
		}
		t.Logf("%s: mean rel=%.3f mean divterm=%.3f mean max-cov=%.3f | div in top5=%.3f later=%.3f",
			cfg.Name, relSum/nItems, divSum/nItems, maxCov/nItems, firstGain/nFirst, laterGain/nLater)
	}
}
