package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV emits the table (header + rows) as CSV; the title and notes are
// written as comment lines so a single file remains self-describing.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// tableJSON is the stable wire form of a Table.
type tableJSON struct {
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   []map[string]string `json:"rows"`
	Notes  []string            `json:"notes,omitempty"`
}

// WriteJSON emits the table as JSON with one object per row keyed by the
// header, the format downstream plotting scripts consume.
func (t *Table) WriteJSON(w io.Writer) error {
	out := tableJSON{Title: t.Title, Header: t.Header, Notes: t.Notes}
	for _, r := range t.Rows {
		row := make(map[string]string, len(t.Header))
		for i, h := range t.Header {
			if i < len(r) {
				row[h] = r[i]
			}
		}
		out.Rows = append(out.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
