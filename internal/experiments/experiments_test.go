package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rerank"
)

func tinyOptions(seed int64) Options {
	opt := DefaultOptions()
	opt.Scale = 0.02 // 30 train / 12 test requests — smoke-test size
	opt.Seed = seed
	opt.Epochs = 2
	return opt
}

func TestBuildEnvStructure(t *testing.T) {
	opt := tinyOptions(42)
	rd, err := cachedRankedData(dataset.TaobaoLike(42), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.9, opt)
	if len(env.Train) == 0 || len(env.Test) == 0 {
		t.Fatal("empty env splits")
	}
	for _, inst := range env.Train {
		if inst.Labels == nil {
			t.Fatal("training instance without click labels")
		}
		if inst.L() != rd.Data.Cfg.ListLen {
			t.Fatalf("list length %d, want %d", inst.L(), rd.Data.Cfg.ListLen)
		}
	}
	for _, inst := range env.Test {
		if inst.Labels != nil {
			t.Fatal("test instance carries labels")
		}
	}
}

func TestBuildEnvDeterministic(t *testing.T) {
	opt := tinyOptions(43)
	rd, err := BuildRankedData(dataset.TaobaoLike(43), NewRankerByName("DIN", 43), opt)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildEnv(rd, 0.9, opt)
	b := BuildEnv(rd, 0.9, opt)
	for i := range a.Train {
		for k := range a.Train[i].Labels {
			if a.Train[i].Labels[k] != b.Train[i].Labels[k] {
				t.Fatal("click simulation not deterministic for fixed options")
			}
		}
	}
}

func TestEvaluateMetricKeys(t *testing.T) {
	opt := tinyOptions(44)
	rd, err := cachedRankedData(dataset.AppStoreLike(44), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, AppStoreLambda, opt)
	res := env.Evaluate(rerank.Identity{}, []int{5, 10})
	for _, key := range []string{"click@5", "ndcg@10", "div@5", "satis@10", "rev@5", "rev@10"} {
		if len(res.PerRequest[key]) != len(env.Test) {
			t.Fatalf("metric %s has %d samples, want %d", key, len(res.PerRequest[key]), len(env.Test))
		}
	}
	// Bid-less datasets must not emit rev.
	rd2, err := cachedRankedData(dataset.TaobaoLike(44), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env2 := BuildEnv(rd2, 0.9, opt)
	res2 := env2.Evaluate(rerank.Identity{}, []int{5})
	if _, ok := res2.PerRequest["rev@5"]; ok {
		t.Fatal("taobao evaluation emitted rev@k")
	}
}

func TestOracleDominatesInit(t *testing.T) {
	opt := tinyOptions(45)
	rd, err := cachedRankedData(dataset.TaobaoLike(45), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.5, opt)
	init := env.Evaluate(rerank.Identity{}, []int{10})
	orc := env.Evaluate(Oracle{env}, []int{10})
	if orc.Mean("click@10") < init.Mean("click@10") {
		t.Fatalf("oracle clicks %v below init %v", orc.Mean("click@10"), init.Mean("click@10"))
	}
}

func TestRapidBeatsInitIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration training is slow")
	}
	// End-to-end: at a moderate scale RAPID must beat the initial ranking
	// on expected clicks — the paper's headline qualitative claim.
	opt := DefaultOptions()
	opt.Scale = 0.15
	opt.Seed = 46
	rd, err := cachedRankedData(dataset.TaobaoLike(46), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.5, opt)
	m := NewRAPID(env, opt, 12, nil)
	if err := env.FitIfTrainable(m, opt); err != nil {
		t.Fatal(err)
	}
	init := env.Evaluate(rerank.Identity{}, []int{10})
	got := env.Evaluate(m, []int{10})
	if got.Mean("click@10") <= init.Mean("click@10") {
		t.Fatalf("RAPID click@10 %v did not beat init %v", got.Mean("click@10"), init.Mean("click@10"))
	}
	if got.Mean("satis@10") <= init.Mean("satis@10") {
		t.Fatalf("RAPID satis@10 %v did not beat init %v", got.Mean("satis@10"), init.Mean("satis@10"))
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Title:  "t",
		Header: []string{"model", "click@5"},
		Notes:  []string{"note line"},
	}
	tbl.AddRow("Init", "0.1234")
	tbl.AddRow("RAPID-pro", "0.5678")
	s := tbl.String()
	for _, want := range []string{"t\n", "model", "click@5", "Init", "RAPID-pro", "note line"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestRunRegretTable(t *testing.T) {
	opt := RegretOptions{Rounds: 300, Checkpoint: 100, Seed: 1, SScale: 0.1}
	tbl, curves := RunRegret(opt)
	if len(curves) != 4 {
		t.Fatalf("expected 4 curves (UCB, greedy, non-personalized, Thompson), got %d", len(curves))
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty regret table")
	}
	for _, c := range curves {
		if c.Final < 0 {
			t.Fatalf("%s negative cumulative regret", c.Mode)
		}
	}
}

func TestSignificanceNotes(t *testing.T) {
	mk := func(name string, clicks []float64) *EvalResult {
		return &EvalResult{Name: name, PerRequest: map[string][]float64{"click@10": clicks}}
	}
	results := []*EvalResult{
		mk("Init", []float64{1, 1, 1, 1}),
		mk("PRM", []float64{1.0, 1.1, 1.0, 1.1}),
		mk("RAPID-pro", []float64{1.4, 1.5, 1.4, 1.5}),
	}
	notes := significanceNotes(results, []string{"click@10"})
	if len(notes) != 1 {
		t.Fatalf("expected 1 note, got %d", len(notes))
	}
	if !strings.Contains(notes[0], "RAPID-pro") || !strings.Contains(notes[0], "PRM") {
		t.Fatalf("note should compare RAPID-pro to PRM: %s", notes[0])
	}
	if !strings.Contains(notes[0], "significant") {
		t.Fatalf("clear separation should be significant: %s", notes[0])
	}
}

func TestSmokeAllDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("driver smoke test trains many models")
	}
	// Every table/figure driver must run end-to-end at smoke scale.
	opt := tinyOptions(47)
	if _, err := RunTable2(0.9, opt); err != nil {
		t.Fatalf("table2: %v", err)
	}
	if _, err := RunTable3(opt); err != nil {
		t.Fatalf("table3: %v", err)
	}
	if _, err := RunTable4(opt); err != nil {
		t.Fatalf("table4: %v", err)
	}
	if _, err := RunTable5(opt); err != nil {
		t.Fatalf("table5: %v", err)
	}
	if _, err := RunTable6(opt); err != nil {
		t.Fatalf("table6: %v", err)
	}
	if _, err := RunFig3(opt); err != nil {
		t.Fatalf("fig3: %v", err)
	}
	if _, err := RunFig4(opt); err != nil {
		t.Fatalf("fig4: %v", err)
	}
	if _, err := RunFig5(opt); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	if _, err := RunDivFnAblation(opt); err != nil {
		t.Fatalf("divfn: %v", err)
	}
	if _, err := RunRobustness(opt); err != nil {
		t.Fatalf("robust: %v", err)
	}
}
