package experiments

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rerank"
)

// TestRapidCalibration is a calibration diagnostic (run with -v): RAPID-pro
// vs init and oracle on the MovieLens-like environment at λ=0.5, the
// setting where personalized diversification should pay most.
func TestRapidCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration diagnostic is slow")
	}
	opt := DefaultOptions()
	opt.Scale = 0.5
	rd, err := cachedRankedData(dataset.MovieLensLike(42), "DIN", opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.5, opt)
	m := NewRAPID(env, opt, 12, nil)
	if err := env.FitIfTrainable(m, opt); err != nil {
		t.Fatal(err)
	}
	for _, r := range []rerank.Reranker{rerank.Identity{}, m, Oracle{env}} {
		res := env.Evaluate(r, []int{10})
		t.Logf("%-10s click@10=%.4f ndcg@10=%.4f div@10=%.4f satis@10=%.4f",
			res.Name, res.Mean("click@10"), res.Mean("ndcg@10"), res.Mean("div@10"), res.Mean("satis@10"))
	}
}
