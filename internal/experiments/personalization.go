package experiments

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rerank"
)

// RunPersonalization quantifies the Figure 5 claim at population level
// (RQ5): if RAPID really diversifies *per user*, the diversity of its
// delivered top-10 should track the user's ground-truth diversity appetite
// — high-appetite users get broader lists, low-appetite users narrower
// ones — while a relevance-only model shows a weaker relationship. The
// driver reports the Pearson correlation between appetite and delivered
// div@10 for Init, PRM and RAPID, plus the diverse-vs-focused segment gap.
func RunPersonalization(opt Options) (*Table, error) {
	rd, err := cachedRankedData(dataset.MovieLensLike(opt.Seed), "DIN", opt)
	if err != nil {
		return nil, err
	}
	env := BuildEnv(rd, 0.5, opt)
	models := []rerank.Reranker{
		rerank.Identity{},
		withTrainCfg(baselines.NewPRM(opt.Hidden, opt.Seed+2), opt, 2),
		NewRAPID(env, opt, 12, nil),
	}
	tbl := &Table{
		Title:  "Personalization analysis (RQ5) — appetite vs delivered diversity (movielens, λ=0.5)",
		Header: []string{"model", "corr(appetite, div@10)", "div@10 diverse users", "div@10 focused users", "gap"},
		Notes: []string{
			"Appetite is the ground-truth per-user diversity weight scale (never visible to models);",
			"a personalized diversifier should show a higher correlation and a larger segment gap.",
		},
	}
	for _, r := range models {
		if err := env.FitIfTrainable(r, opt); err != nil {
			return nil, err
		}
		var appetites, divs []float64
		var divSum, focSum [2]float64
		var divN, focN float64
		for _, inst := range env.Test {
			ranked := rerank.Apply(r, inst)
			cover := make([][]float64, len(ranked))
			for i, v := range ranked {
				cover[i] = env.Data.Cover(v)
			}
			d := metrics.DivAtK(cover, env.Data.M(), 10)
			app := env.Data.Users[inst.User].DivAppetite
			appetites = append(appetites, app)
			divs = append(divs, d)
			if app >= 0.6 {
				divSum[0] += d
				divN++
			} else {
				focSum[0] += d
				focN++
			}
		}
		var dMean, fMean float64
		if divN > 0 {
			dMean = divSum[0] / divN
		}
		if focN > 0 {
			fMean = focSum[0] / focN
		}
		tbl.AddRow(r.Name(),
			fmt.Sprintf("%.3f", pearson(appetites, divs)),
			f4(dMean), f4(fMean), fmt.Sprintf("%+.3f", dMean-fMean))
	}
	return tbl, nil
}

// pearson computes the Pearson correlation coefficient of two equal-length
// samples (0 for degenerate inputs).
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 || len(x) != len(y) {
		return 0
	}
	mx, my := metrics.Mean(x), metrics.Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
