package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/diversify"
	"repro/internal/metrics"
	"repro/internal/rerank"
)

// diversifyK is the slate depth of the cross-evaluation: every metric is
// @10, the paper's deeper cutoff.
const diversifyK = 10

// DiversifySuiteLambda is the trade-off every classic diversifier runs at in
// the cross-evaluation: deep enough into the diversity regime to separate
// the heuristics, shallow enough that relevance still dominates the slate.
const DiversifySuiteLambda = 0.4

// headShareForTail marks the popularity head: items in the top 20% of the
// catalog by history-interaction count. Everything below is long tail.
const headShareForTail = 0.20

// RunDiversifyCrossEval cross-evaluates RAPID against the classic
// diversifier family (MMR, DPP, BSwap, sliding-window — ROADMAP item 3) on
// the three dataset generators. Beyond the paper's accuracy/diversity
// metrics (satis@k, ILD@k, α-NDCG@k) it reports the inventory-facing axes
// the Airbnb and reranker exemplars motivate: Gini over item exposure
// (popularity bias of the slates the system actually serves) and long-tail
// share (shelf space given to unpopular inventory).
func RunDiversifyCrossEval(opt Options) (*Table, error) {
	specs := []struct {
		cfg    dataset.Config
		lambda float64
	}{
		{dataset.TaobaoLike(opt.Seed), 0.9},
		{dataset.MovieLensLike(opt.Seed), 0.9},
		{dataset.AppStoreLike(opt.Seed), AppStoreLambda},
	}
	tbl := &Table{
		Title: fmt.Sprintf("Diversifier cross-evaluation (k=%d, diversifier λ=%.1f, initial ranker DIN)",
			diversifyK, DiversifySuiteLambda),
		Header: []string{"dataset", "reranker",
			fmt.Sprintf("satis@%d", diversifyK),
			fmt.Sprintf("ild@%d", diversifyK),
			fmt.Sprintf("alpha-ndcg@%d", diversifyK),
			fmt.Sprintf("gini@%d", diversifyK),
			fmt.Sprintf("tail@%d", diversifyK)},
		Notes: []string{
			"gini: Gini coefficient over catalog-wide item exposure in served top-k slates (lower = less popularity bias)",
			fmt.Sprintf("tail: mean share of the top-k slate held by long-tail items (catalog outside the top %.0f%% by history popularity)", 100*headShareForTail),
		},
	}
	for _, spec := range specs {
		rd, err := cachedRankedData(spec.cfg, "DIN", opt)
		if err != nil {
			return nil, err
		}
		env := BuildEnv(rd, spec.lambda, opt)
		rapid := NewRAPID(env, opt, 12, nil)
		if err := env.FitIfTrainable(rapid, opt); err != nil {
			return nil, fmt.Errorf("experiments: fit %s on %s: %w", rapid.Name(), spec.cfg.Name, err)
		}
		rerankers := []rerank.Reranker{rapid}
		for _, name := range diversify.Names() {
			d, err := diversify.New(name)
			if err != nil {
				return nil, err
			}
			rerankers = append(rerankers, diversify.AsReranker(d, DiversifySuiteLambda))
		}
		isTail := tailClassifier(env.Data)
		for _, r := range rerankers {
			row := evalDiversifyRow(env, r, isTail)
			tbl.AddRow(append([]string{spec.cfg.Name}, row...)...)
		}
	}
	return tbl, nil
}

// evalDiversifyRow evaluates one re-ranker on the environment's test
// requests and formats its metric cells. Requests run serially in test-set
// order: the exposure histogram is a cross-request aggregate, and a
// deterministic accumulation order keeps the committed golden table exact.
func evalDiversifyRow(env *Env, r rerank.Reranker, isTail func(int) bool) []string {
	var satis, ild, andcg, tail []float64
	exposure := make([]float64, len(env.Data.Items))
	for _, inst := range env.Test {
		ranked := rerank.Apply(r, inst)
		satis = append(satis, env.DCM.Satisfaction(inst.User, ranked, diversifyK))

		k := diversifyK
		if k > len(ranked) {
			k = len(ranked)
		}
		feats := make([][]float64, k)
		rel := make([][]float64, k)
		for i, v := range ranked[:k] {
			feats[i] = env.Data.ItemFeatures(v)
			cover := env.Data.Cover(v)
			rv := env.Data.Relevance(inst.User, v)
			row := make([]float64, len(cover))
			for t, c := range cover {
				row[t] = rv * c
			}
			rel[i] = row
			exposure[v]++
		}
		ild = append(ild, metrics.ILDAtK(feats, diversifyK))
		andcg = append(andcg, metrics.AlphaNDCGAtK(rel, 0.5, diversifyK))
		tail = append(tail, metrics.LongTailShare(ranked, isTail, diversifyK))
	}
	return []string{r.Name(),
		f4(metrics.Mean(satis)),
		f4(metrics.Mean(ild)),
		f4(metrics.Mean(andcg)),
		f4(metrics.Gini(exposure)),
		f4(metrics.Mean(tail))}
}

// tailClassifier derives the dataset's long-tail predicate: items are ranked
// by their interaction count across all user histories (ties broken by item
// ID so the split is deterministic), and the catalog outside the top
// headShareForTail fraction is the tail.
func tailClassifier(d *dataset.Dataset) func(int) bool {
	count := make([]int, len(d.Items))
	for _, u := range d.Users {
		for _, v := range u.History {
			if v >= 0 && v < len(count) {
				count[v]++
			}
		}
	}
	order := make([]int, len(count))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if count[order[a]] != count[order[b]] {
			return count[order[a]] > count[order[b]]
		}
		return order[a] < order[b]
	})
	headN := int(headShareForTail * float64(len(order)))
	head := make(map[int]bool, headN)
	for _, v := range order[:headN] {
		head[v] = true
	}
	return func(v int) bool { return !head[v] }
}
