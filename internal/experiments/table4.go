package experiments

import (
	"fmt"
)

// RunTable4 reproduces Table IV: the full roster on both public datasets
// with the SVMRank and LambdaMART initial rankers at λ = 0.9, reporting
// click@10 and div@10 (the columns the paper shows).
func RunTable4(opt Options) ([]*Table, error) {
	const lambda = 0.9
	var tables []*Table
	for _, rkName := range []string{"SVMRank", "LambdaMART"} {
		for _, cfg := range publicDatasets(opt) {
			rd, err := cachedRankedData(cfg, rkName, opt)
			if err != nil {
				return nil, err
			}
			env := BuildEnv(rd, lambda, opt)
			tbl, err := utilityTable(env, opt,
				fmt.Sprintf("Table IV — %s, initial ranker %s (λ=%.1f)", cfg.Name, rkName, lambda),
				[]string{"click@10", "div@10"})
			if err != nil {
				return nil, err
			}
			tables = append(tables, tbl)
		}
	}
	return tables, nil
}
