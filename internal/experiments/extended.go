package experiments

import (
	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/rerank"
)

// RunExtended evaluates the extra baselines that the paper cites but does
// not table — currently the pointer-network Seq2Slate — against Init, PRM
// and RAPID on the Taobao-like λ=0.9 environment. It exists so the extra
// implementations have a reproducible, comparable home.
func RunExtended(opt Options) (*Table, error) {
	rd, err := cachedRankedData(dataset.TaobaoLike(opt.Seed), "DIN", opt)
	if err != nil {
		return nil, err
	}
	env := BuildEnv(rd, 0.9, opt)
	models := []rerank.Reranker{
		rerank.Identity{},
		withTrainCfg(baselines.NewPRM(opt.Hidden, opt.Seed+2), opt, 2),
		baselines.NewSeq2Slate(opt.Hidden, opt.Seed+14),
		NewRAPID(env, opt, 12, nil),
	}
	tbl := &Table{
		Title:  "Extended baselines — Seq2Slate vs the paper's roster (taobao, λ=0.9)",
		Header: []string{"model", "click@5", "ndcg@5", "click@10", "div@10", "satis@10"},
	}
	for _, r := range models {
		if err := env.FitIfTrainable(r, opt); err != nil {
			return nil, err
		}
		res := env.Evaluate(r, []int{5, 10})
		tbl.AddRow(r.Name(), f4(res.Mean("click@5")), f4(res.Mean("ndcg@5")),
			f4(res.Mean("click@10")), f4(res.Mean("div@10")), f4(res.Mean("satis@10")))
	}
	return tbl, nil
}
