// Package experiments wires the substrates together into the paper's
// evaluation pipeline (Section IV): generate a dataset, train an initial
// ranker, build initial lists, simulate clicks with the DCM environment,
// train every re-ranker, and compute the table/figure quantities. Each
// table and figure of the paper has a driver function in this package.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clickmodel"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/ranker"
	"repro/internal/rerank"
)

// Options controls experiment size and reporting.
type Options struct {
	// Scale multiplies every dataset count; 1.0 is the harness default
	// (a laptop-scale stand-in for the paper's millions of interactions).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Hidden is q_h for all neural models.
	Hidden int
	// D is RAPID's per-topic behavior length.
	D int
	// Epochs for neural re-ranker training.
	Epochs int
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// DefaultOptions returns the harness defaults (hidden 16, D 5).
func DefaultOptions() Options {
	return Options{Scale: 1, Seed: 42, Hidden: 16, D: 5, Epochs: 8}
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Env is a fully prepared experimental environment for one (dataset,
// initial ranker, λ) triple.
type Env struct {
	Data   *dataset.Dataset
	Ranker ranker.Ranker
	DCM    *clickmodel.DCM
	Lambda float64
	// Train/Test are the re-ranking training and test instances.
	Train []*rerank.Instance
	Test  []*rerank.Instance
}

// RankedData is a dataset with a fitted initial ranker and its precomputed
// initial lists — shared across λ settings, since clicks are the only thing
// λ changes.
type RankedData struct {
	Data        *dataset.Dataset
	Ranker      ranker.Ranker
	trainLists  [][]int
	trainScores [][]float64
	trainUsers  []int
	testLists   [][]int
	testScores  [][]float64
	testUsers   []int
}

// BuildRankedData generates a dataset, fits the initial ranker on the
// ranker-train split, and materializes the initial lists for the re-rank
// train and test pools.
func BuildRankedData(cfg dataset.Config, rk ranker.Ranker, opt Options) (*RankedData, error) {
	if opt.Scale != 1 {
		cfg = cfg.Scaled(opt.Scale)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	opt.logf("[%s] dataset: %d users, %d items, %d train requests, %d test requests",
		cfg.Name, len(d.Users), len(d.Items), len(d.RerankPools), len(d.TestPools))
	start := time.Now()
	if err := rk.Fit(d); err != nil {
		return nil, fmt.Errorf("experiments: fit initial ranker %s: %w", rk.Name(), err)
	}
	opt.logf("[%s] initial ranker %s fitted in %v", cfg.Name, rk.Name(), time.Since(start).Round(time.Millisecond))
	rd := &RankedData{Data: d, Ranker: rk}
	for _, p := range d.RerankPools {
		items, scores := ranker.RankPool(rk, d, p, cfg.ListLen)
		rd.trainLists = append(rd.trainLists, items)
		rd.trainScores = append(rd.trainScores, scores)
		rd.trainUsers = append(rd.trainUsers, p.User)
	}
	for _, p := range d.TestPools {
		items, scores := ranker.RankPool(rk, d, p, cfg.ListLen)
		rd.testLists = append(rd.testLists, items)
		rd.testScores = append(rd.testScores, scores)
		rd.testUsers = append(rd.testUsers, p.User)
	}
	return rd, nil
}

// BuildEnv derives the λ-specific environment from ranked data: the DCM,
// simulated training clicks, and assembled instances.
func BuildEnv(rd *RankedData, lambda float64, opt Options) *Env {
	d := rd.Data
	dcm := &clickmodel.DCM{
		Lambda:      lambda,
		Relevance:   d.Relevance,
		DivWeight:   d.DivWeight,
		Cover:       d.Cover,
		Termination: clickmodel.DefaultTermination(d.Cfg.ListLen, 0.75, 0.92),
		Topics:      d.M(),
	}
	env := &Env{Data: d, Ranker: rd.Ranker, DCM: dcm, Lambda: lambda}
	clickRNG := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	instRNG := rand.New(rand.NewSource(opt.Seed ^ 0x1257))
	for i := range rd.trainLists {
		clicks, _ := dcm.Simulate(rd.trainUsers[i], rd.trainLists[i], clickRNG)
		req := dataset.Request{
			User:       rd.trainUsers[i],
			Items:      rd.trainLists[i],
			InitScores: rd.trainScores[i],
			Clicks:     clicks,
		}
		env.Train = append(env.Train, rerank.NewInstance(d, req, instRNG))
	}
	for i := range rd.testLists {
		req := dataset.Request{
			User:       rd.testUsers[i],
			Items:      rd.testLists[i],
			InitScores: rd.testScores[i],
		}
		env.Test = append(env.Test, rerank.NewInstance(d, req, instRNG))
	}
	return env
}

// EvalResult holds per-request metric samples for one re-ranker, enabling
// both means and significance tests.
type EvalResult struct {
	Name       string
	PerRequest map[string][]float64
}

// Mean returns the average of one metric.
func (r *EvalResult) Mean(metric string) float64 {
	return metrics.Mean(r.PerRequest[metric])
}

// Metrics returns the sorted metric keys.
func (r *EvalResult) Metrics() []string {
	keys := make([]string, 0, len(r.PerRequest))
	for k := range r.PerRequest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Evaluate runs the re-ranker over the test instances and computes the
// paper's metrics at the given cutoffs. Expected (exact) DCM click
// probabilities are used instead of sampled clicks, which removes
// evaluation variance without changing any expectation. Requests are
// scored in parallel (inference is read-only on a fitted model); results
// keep the test-set order so paired significance tests line up.
func (e *Env) Evaluate(r rerank.Reranker, ks []int) *EvalResult {
	res := &EvalResult{Name: r.Name(), PerRequest: make(map[string][]float64)}
	type reqMetrics struct {
		keys []string
		vals []float64
	}
	perReq := make([]reqMetrics, len(e.Test))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(e.Test) {
		workers = len(e.Test)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.Test) {
					return
				}
				inst := e.Test[i]
				ranked := rerank.Apply(r, inst)
				exp := e.DCM.ExpectedClicks(inst.User, ranked)
				cover := make([][]float64, len(ranked))
				for j, v := range ranked {
					cover[j] = e.Data.Cover(v)
				}
				var rm reqMetrics
				add := func(metric string, v float64) {
					rm.keys = append(rm.keys, metric)
					rm.vals = append(rm.vals, v)
				}
				for _, k := range ks {
					suffix := fmt.Sprintf("@%d", k)
					add("click"+suffix, metrics.ClickAtK(exp, k))
					add("ndcg"+suffix, metrics.NDCGAtK(exp, k))
					add("div"+suffix, metrics.DivAtK(cover, e.Data.M(), k))
					add("satis"+suffix, e.DCM.Satisfaction(inst.User, ranked, k))
					if e.Data.Cfg.WithBids {
						bids := make([]float64, len(ranked))
						for j, v := range ranked {
							bids[j] = e.Data.Bid(v)
						}
						add("rev"+suffix, metrics.RevAtK(exp, bids, k))
					}
				}
				perReq[i] = rm
			}
		}()
	}
	wg.Wait()
	for _, rm := range perReq {
		for j, key := range rm.keys {
			res.PerRequest[key] = append(res.PerRequest[key], rm.vals[j])
		}
	}
	return res
}

// FitIfTrainable fits r on the environment's training instances when it is
// trainable; heuristic re-rankers pass through.
func (e *Env) FitIfTrainable(r rerank.Reranker, opt Options) error {
	t, ok := r.(rerank.Trainable)
	if !ok {
		return nil
	}
	start := time.Now()
	err := t.Fit(e.Train)
	opt.logf("[%s λ=%.1f] trained %s in %v", e.Data.Name, e.Lambda, r.Name(), time.Since(start).Round(time.Millisecond))
	return err
}
