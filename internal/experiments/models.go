package experiments

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/rerank"
)

// trainCfg builds the shared neural training configuration from options.
func trainCfg(opt Options, seedOffset int64) rerank.TrainConfig {
	cfg := rerank.DefaultTrainConfig(opt.Seed + seedOffset)
	if opt.Epochs > 0 {
		cfg.Epochs = opt.Epochs
	}
	return cfg
}

// rapidConfig builds a core.Config from the environment geometry.
func rapidConfig(e *Env, opt Options, seedOffset int64) core.Config {
	cfg := core.DefaultConfig(e.Data.Cfg.UserDim, e.Data.Cfg.ItemDim, e.Data.M(), opt.Seed+seedOffset)
	if opt.Hidden > 0 {
		cfg.Hidden = opt.Hidden
	}
	if opt.D > 0 {
		cfg.D = opt.D
	}
	return cfg
}

// NewRAPID builds a RAPID model for the environment; mutate selects the
// variant (nil for the default probabilistic model).
func NewRAPID(e *Env, opt Options, seedOffset int64, mutate func(*core.Config)) *core.Model {
	cfg := rapidConfig(e, opt, seedOffset)
	if mutate != nil {
		mutate(&cfg)
	}
	m := core.New(cfg)
	m.TrainCfg = trainCfg(opt, seedOffset)
	return m
}

// Roster identifies which baselines to include.
type Roster int

// Rosters.
const (
	// FullRoster is every baseline plus both RAPID outputs — Tables II–IV.
	FullRoster Roster = iota
	// NeuralRoster is PRM, DESA, RAPID — the efficiency study (Table VI).
	NeuralRoster
	// RapidOnly is just RAPID-pro.
	RapidOnly
)

// BuildRerankers constructs (untrained) re-rankers for the environment.
// The returned order matches the paper's table layout.
func BuildRerankers(e *Env, opt Options, roster Roster) []rerank.Reranker {
	h := opt.Hidden
	switch roster {
	case NeuralRoster:
		return []rerank.Reranker{
			baselines.NewPRM(h, opt.Seed+2),
			baselines.NewDESA(h, opt.Seed+7),
			NewRAPID(e, opt, 12, nil),
		}
	case RapidOnly:
		return []rerank.Reranker{NewRAPID(e, opt, 12, nil)}
	default:
		det := NewRAPID(e, opt, 11, func(c *core.Config) { c.Output = core.Deterministic })
		pro := NewRAPID(e, opt, 12, nil)
		return []rerank.Reranker{
			rerank.Identity{},
			withTrainCfg(baselines.NewDLCM(h, opt.Seed+1), opt, 1),
			withTrainCfg(baselines.NewPRM(h, opt.Seed+2), opt, 2),
			withTrainCfg(baselines.NewSetRank(h, opt.Seed+3), opt, 3),
			withTrainCfg(baselines.NewSRGA(h, opt.Seed+4), opt, 4),
			baselines.NewMMR(),
			baselines.NewDPP(),
			withTrainCfg(baselines.NewDESA(h, opt.Seed+7), opt, 7),
			baselines.NewSSD(),
			baselines.NewAdpMMR(),
			baselines.NewPDGAN(h, opt.Seed+10),
			det,
			pro,
		}
	}
}

// withTrainCfg injects the shared training configuration into the neural
// baselines, which all expose a TrainCfg field.
func withTrainCfg(r rerank.Reranker, opt Options, seedOffset int64) rerank.Reranker {
	cfg := trainCfg(opt, seedOffset)
	switch m := r.(type) {
	case *baselines.DLCM:
		m.TrainCfg = cfg
	case *baselines.PRM:
		m.TrainCfg = cfg
	case *baselines.SetRank:
		m.TrainCfg = cfg
	case *baselines.SRGA:
		m.TrainCfg = cfg
	case *baselines.DESA:
		m.TrainCfg = cfg
	}
	return r
}
