package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	tbl := &Table{
		Title:  "Sample",
		Header: []string{"model", "click@10"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("Init", "1.0000")
	tbl.AddRow("RAPID-pro", "1.2000")
	return tbl
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# Sample", "model,click@10", "RAPID-pro,1.2000", "# a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded tableJSON
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "Sample" || len(decoded.Rows) != 2 {
		t.Fatalf("decoded %+v", decoded)
	}
	if decoded.Rows[1]["model"] != "RAPID-pro" || decoded.Rows[1]["click@10"] != "1.2000" {
		t.Fatalf("row mapping %v", decoded.Rows[1])
	}
}
