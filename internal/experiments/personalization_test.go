package experiments

import (
	"math"
	"testing"
)

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := pearson(x, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := pearson(x, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anti-correlation = %v", got)
	}
	if got := pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant sample correlation = %v", got)
	}
	if got := pearson([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("degenerate length = %v", got)
	}
}

func TestRunPersonalizationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	tbl, err := RunPersonalization(tinyOptions(51))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(tbl.Rows))
	}
}

func TestRunExtendedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	tbl, err := RunExtended(tinyOptions(52))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range tbl.Rows {
		if r[0] == "Seq2Slate" {
			found = true
		}
	}
	if !found {
		t.Fatal("extended table missing Seq2Slate")
	}
}
