package experiments

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rerank"
)

// TestHeadroom verifies the environments leave meaningful room between the
// initial ranker and the oracle — the precondition for the paper's "all
// re-ranking models improve the initial ranker by a large margin". Run with
// -v to see the numbers.
func TestHeadroom(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = 0.25
	for _, cfg := range []dataset.Config{dataset.TaobaoLike(42), dataset.MovieLensLike(42)} {
		rd, err := cachedRankedData(cfg, "DIN", opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, lam := range []float64{0.5, 0.9, 1.0} {
			env := BuildEnv(rd, lam, opt)
			init := env.Evaluate(rerank.Identity{}, []int{10})
			orc := env.Evaluate(Oracle{env}, []int{10})
			initC, orcC := init.Mean("click@10"), orc.Mean("click@10")
			t.Logf("%s λ=%.1f: init click@10=%.4f div@10=%.4f | oracle click@10=%.4f div@10=%.4f (headroom %+.1f%%)",
				cfg.Name, lam, initC, init.Mean("div@10"), orcC, orc.Mean("div@10"), (orcC-initC)/initC*100)
			if orcC < initC {
				t.Errorf("%s λ=%.1f: oracle (%.4f) below init (%.4f)", cfg.Name, lam, orcC, initC)
			}
		}
	}
}
