package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// RunTable5 reproduces Table V: RAPID-pro on the App-Store-like dataset
// with maximum behavior-sequence lengths D ∈ {3, 5, 10}.
func RunTable5(opt Options) (*Table, error) {
	cfg := dataset.AppStoreLike(opt.Seed)
	rd, err := cachedRankedData(cfg, "DIN", opt)
	if err != nil {
		return nil, err
	}
	env := BuildEnv(rd, AppStoreLambda, opt)
	tbl := &Table{
		Title:  "Table V — RAPID with different maximum behavior-sequence lengths (App Store)",
		Header: append([]string{"model"}, table3Columns...),
	}
	for _, d := range []int{3, 5, 10} {
		m := NewRAPID(env, opt, 12, func(c *core.Config) { c.D = d })
		if err := env.FitIfTrainable(m, opt); err != nil {
			return nil, fmt.Errorf("experiments: fit RAPID-%d: %w", d, err)
		}
		res := env.Evaluate(m, []int{5, 10})
		row := []string{fmt.Sprintf("RAPID-%d", d)}
		for _, c := range table3Columns {
			row = append(row, f4(res.Mean(c)))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}
