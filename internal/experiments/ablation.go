package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rerank"
)

// RunDivFnAblation exercises the paper's remark that the probabilistic
// coverage in Eqs. (4)–(5) can be replaced by any submodular diversity
// function: RAPID is trained with probabilistic coverage, saturated
// coverage and facility location on the Taobao-like λ=0.5 environment
// (where the diversity term matters most) and compared on utility and
// diversity.
func RunDivFnAblation(opt Options) (*Table, error) {
	rd, err := cachedRankedData(dataset.TaobaoLike(opt.Seed), "DIN", opt)
	if err != nil {
		return nil, err
	}
	env := BuildEnv(rd, 0.5, opt)
	tbl := &Table{
		Title:  "Ablation — submodular diversity functions (taobao, λ=0.5)",
		Header: []string{"diversity fn", "click@10", "ndcg@10", "div@10", "satis@10"},
	}
	for i, name := range []string{"prob-coverage", "saturated-coverage", "facility-location"} {
		m := NewRAPID(env, opt, 30+int64(i), func(c *core.Config) { c.DiversityFn = name })
		if err := env.FitIfTrainable(m, opt); err != nil {
			return nil, fmt.Errorf("experiments: fit %s: %w", name, err)
		}
		res := env.Evaluate(m, []int{10})
		tbl.AddRow(name, f4(res.Mean("click@10")), f4(res.Mean("ndcg@10")),
			f4(res.Mean("div@10")), f4(res.Mean("satis@10")))
	}
	return tbl, nil
}

// RunRobustness checks that the qualitative conclusions survive a change
// of click environment: models are trained on DCM-simulated clicks (the
// paper's protocol) and evaluated under a Position-Based Model, whose
// examination mechanics differ from the DCM's termination-after-click.
func RunRobustness(opt Options) (*Table, error) {
	rd, err := cachedRankedData(dataset.TaobaoLike(opt.Seed), "DIN", opt)
	if err != nil {
		return nil, err
	}
	env := BuildEnv(rd, 0.5, opt)
	d := env.Data
	pbm := &clickmodel.PBM{
		Lambda:      env.Lambda,
		Relevance:   d.Relevance,
		DivWeight:   d.DivWeight,
		Cover:       d.Cover,
		Topics:      d.M(),
		Examination: clickmodel.DefaultExamination(d.Cfg.ListLen, 0.7),
	}
	models := []rerank.Reranker{
		rerank.Identity{},
		withTrainCfg(baselines.NewPRM(opt.Hidden, opt.Seed+2), opt, 2),
		NewRAPID(env, opt, 12, nil),
	}
	tbl := &Table{
		Title:  "Robustness — trained on DCM clicks, evaluated under a PBM (taobao, λ=0.5)",
		Header: []string{"model", "pbm-click@5", "pbm-click@10", "div@10"},
		Notes:  []string{"PBM examination γ(k) = (k+1)^-0.7; same diversity-aware attraction as the DCM."},
	}
	for _, r := range models {
		if err := env.FitIfTrainable(r, opt); err != nil {
			return nil, err
		}
		var c5, c10, div []float64
		for _, inst := range env.Test {
			ranked := rerank.Apply(r, inst)
			exp := pbm.ExpectedClicks(inst.User, ranked)
			cover := make([][]float64, len(ranked))
			for i, v := range ranked {
				cover[i] = d.Cover(v)
			}
			c5 = append(c5, metrics.ClickAtK(exp, 5))
			c10 = append(c10, metrics.ClickAtK(exp, 10))
			div = append(div, metrics.DivAtK(cover, d.M(), 10))
		}
		tbl.AddRow(r.Name(), f4(metrics.Mean(c5)), f4(metrics.Mean(c10)), f4(metrics.Mean(div)))
	}
	return tbl, nil
}
