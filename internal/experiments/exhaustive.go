package experiments

import (
	"repro/internal/rerank"
)

// ExhaustiveOracle finds the expected-clicks-optimal ordering of an
// instance's top candidates by branch-and-bound over orderings — the exact
// comparator the greedy Oracle γ-approximates (Theorem 5.1's analysis).
// Complexity is factorial, so Limit caps how many of the list's items are
// permuted (the rest keep the greedy order); it exists for validation and
// tests, not for the evaluation pipeline.
type ExhaustiveOracle struct {
	Env *Env
	// Limit is the number of leading items optimized exactly (≤ 8 keeps
	// the search trivial: 8! = 40320 orderings).
	Limit int
	// K is the prefix whose expected clicks are maximized (defaults to
	// Limit).
	K int
}

// Name implements rerank.Reranker.
func (o ExhaustiveOracle) Name() string { return "ExhaustiveOracle" }

// Scores implements rerank.Reranker.
func (o ExhaustiveOracle) Scores(inst *rerank.Instance) []float64 {
	limit := o.Limit
	if limit <= 0 || limit > inst.L() {
		limit = inst.L()
	}
	if limit > 8 {
		limit = 8
	}
	k := o.K
	if k <= 0 || k > limit {
		k = limit
	}
	// Candidate pool: the greedy oracle's top `limit` items, which always
	// contains the exact optimum's support for k = limit prefixes.
	greedy := Oracle{o.Env}
	greedyOrder := rerank.OrderByScores(inst.Items, greedy.Scores(inst))
	pool := greedyOrder[:limit]

	best := make([]int, limit)
	cur := make([]int, 0, limit)
	used := make([]bool, limit)
	bestVal := -1.0
	var walk func()
	walk = func() {
		if len(cur) == limit {
			ordered := make([]int, 0, limit)
			for _, idx := range cur {
				ordered = append(ordered, pool[idx])
			}
			exp := o.Env.DCM.ExpectedClicks(inst.User, ordered)
			var val float64
			for i := 0; i < k; i++ {
				val += exp[i]
			}
			if val > bestVal {
				bestVal = val
				copy(best, cur)
			}
			return
		}
		for i := 0; i < limit; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, i)
			walk()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	walk()

	// Encode: optimized prefix first, then the remaining greedy tail.
	scores := make([]float64, inst.L())
	pos := map[int]int{}
	for i, v := range inst.Items {
		pos[v] = i
	}
	rank := 0
	for _, idx := range best {
		scores[pos[pool[idx]]] = float64(inst.L() - rank)
		rank++
	}
	for _, v := range greedyOrder[limit:] {
		scores[pos[v]] = float64(inst.L() - rank)
		rank++
	}
	return scores
}
