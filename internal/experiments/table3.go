package experiments

import (
	"fmt"

	"repro/internal/dataset"
)

// AppStoreLambda is the λ of the ground-truth user model used as the App
// Store environment. The paper evaluates App Store with real logged clicks
// and no click model; our "real user" is by construction the generating
// DCM, so evaluating against it directly is the faithful analogue
// (documented in DESIGN.md).
const AppStoreLambda = 0.8

// table3Columns is the Table III metric layout (adds rev@k).
var table3Columns = []string{"click@5", "ndcg@5", "div@5", "rev@5", "click@10", "ndcg@10", "div@10", "rev@10"}

// RunTable3 reproduces Table III: the full roster on the App-Store-like
// dataset with revenue metrics and the improvement row versus PRM
// (the strongest baseline in the paper).
func RunTable3(opt Options) (*Table, error) {
	cfg := dataset.AppStoreLike(opt.Seed)
	rd, err := cachedRankedData(cfg, "DIN", opt)
	if err != nil {
		return nil, err
	}
	env := BuildEnv(rd, AppStoreLambda, opt)
	tbl, err := utilityTable(env, opt, "Table III — App Store dataset (revenue objective)", table3Columns)
	if err != nil {
		return nil, err
	}
	addImprovementRow(tbl, table3Columns)
	return tbl, nil
}

// addImprovementRow appends the paper's "impv%" row: RAPID-pro versus PRM.
func addImprovementRow(tbl *Table, cols []string) {
	find := func(name string) []string {
		for _, r := range tbl.Rows {
			if r[0] == name {
				return r
			}
		}
		return nil
	}
	rapid := find("RAPID-pro")
	prm := find("PRM")
	if rapid == nil || prm == nil {
		return
	}
	row := []string{"impv% (vs PRM)"}
	for i := range cols {
		var rv, pv float64
		fmt.Sscanf(rapid[i+1], "%f", &rv)
		fmt.Sscanf(prm[i+1], "%f", &pv)
		if pv != 0 {
			row = append(row, fmt.Sprintf("%+.2f%%", (rv-pv)/pv*100))
		} else {
			row = append(row, "n/a")
		}
	}
	tbl.AddRow(row...)
}
