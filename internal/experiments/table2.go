package experiments

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/ranker"
)

// rankedCache memoizes (dataset, initial ranker) pairs within a process so
// that multi-table runs (table2a/b/c share everything but λ) don't retrain
// the initial ranker.
var rankedCache sync.Map // string → *RankedData

func cachedRankedData(cfg dataset.Config, rkName string, opt Options) (*RankedData, error) {
	key := fmt.Sprintf("%s|%s|%v|%d|%d", cfg.Name, rkName, opt.Scale, opt.Seed, cfg.Seed)
	if v, ok := rankedCache.Load(key); ok {
		return v.(*RankedData), nil
	}
	rd, err := BuildRankedData(cfg, NewRankerByName(rkName, opt.Seed), opt)
	if err != nil {
		return nil, err
	}
	rankedCache.Store(key, rd)
	return rd, nil
}

// NewRankerByName builds an initial ranker from its table name
// ("DIN", "SVMRank", "LambdaMART"); unknown names default to DIN.
func NewRankerByName(name string, seed int64) ranker.Ranker {
	switch name {
	case "SVMRank":
		return ranker.NewSVMRank(seed)
	case "LambdaMART":
		return ranker.NewLambdaMART()
	default:
		return ranker.NewDIN(seed)
	}
}

// publicDatasets returns the two public-dataset configs of Table II.
func publicDatasets(opt Options) []dataset.Config {
	return []dataset.Config{
		dataset.TaobaoLike(opt.Seed),
		dataset.MovieLensLike(opt.Seed),
	}
}

// utilityColumns is the Table II metric layout.
var utilityColumns = []string{"click@5", "ndcg@5", "div@5", "satis@5", "click@10", "ndcg@10", "div@10", "satis@10"}

// RunTable2 reproduces Table II for one λ: every baseline and both RAPID
// outputs on the Taobao-like and MovieLens-like datasets with the DIN
// initial ranker. It returns one table per dataset.
func RunTable2(lambda float64, opt Options) ([]*Table, error) {
	var tables []*Table
	for _, cfg := range publicDatasets(opt) {
		rd, err := cachedRankedData(cfg, "DIN", opt)
		if err != nil {
			return nil, err
		}
		env := BuildEnv(rd, lambda, opt)
		tbl, err := utilityTable(env, opt,
			fmt.Sprintf("Table II (λ=%.1f) — %s, initial ranker DIN", lambda, cfg.Name),
			utilityColumns)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// utilityTable trains the full roster on the environment and formats the
// requested metric columns, with a significance note comparing RAPID-pro
// against the strongest baseline per column.
func utilityTable(env *Env, opt Options, title string, cols []string) (*Table, error) {
	rankers := BuildRerankers(env, opt, FullRoster)
	tbl := &Table{Title: title, Header: append([]string{"model"}, cols...)}
	results := make([]*EvalResult, 0, len(rankers))
	for _, r := range rankers {
		if err := env.FitIfTrainable(r, opt); err != nil {
			return nil, fmt.Errorf("experiments: fit %s: %w", r.Name(), err)
		}
		res := env.Evaluate(r, []int{5, 10})
		results = append(results, res)
		row := []string{res.Name}
		for _, c := range cols {
			row = append(row, f4(res.Mean(c)))
		}
		tbl.AddRow(row...)
	}
	tbl.Notes = significanceNotes(results, cols)
	return tbl, nil
}

// significanceNotes emits the paper's "*" analysis: for each column, a
// paired t-test between the best RAPID variant and the best non-RAPID
// baseline.
func significanceNotes(results []*EvalResult, cols []string) []string {
	var rapid, bestBase *EvalResult
	for _, r := range results {
		if isRapid(r.Name) {
			if rapid == nil || r.Mean("click@10") > rapid.Mean("click@10") {
				rapid = r
			}
		} else if r.Name != "Init" {
			if bestBase == nil || r.Mean("click@10") > bestBase.Mean("click@10") {
				bestBase = r
			}
		}
	}
	if rapid == nil || bestBase == nil {
		return nil
	}
	var notes []string
	for _, c := range cols {
		tt := metrics.PairedTTest(rapid.PerRequest[c], bestBase.PerRequest[c])
		mark := ""
		if tt.P < 0.05 && rapid.Mean(c) > bestBase.Mean(c) {
			mark = " *significant (p<0.05)"
		}
		notes = append(notes, fmt.Sprintf("%s: %s %.4f vs best baseline %s %.4f (p=%.4f)%s",
			c, rapid.Name, rapid.Mean(c), bestBase.Name, bestBase.Mean(c), tt.P, mark))
	}
	return notes
}

func isRapid(name string) bool {
	return len(name) >= 5 && name[:5] == "RAPID"
}
