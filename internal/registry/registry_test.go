package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rerank"
	"repro/internal/serve"
)

func testGeometry() core.Config {
	return core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2,
		Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
}

// stubScorer carries its version label in both the scorer name and a fixed
// score offset, so coherence tests can detect a torn (scorer, version) pair.
type stubScorer struct {
	name  string
	sleep time.Duration
	bad   bool // emit NaN scores
	short bool // emit too few scores
}

func (s stubScorer) Name() string { return s.name }
func (s stubScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return s.Scores(inst), nil
}
func (s stubScorer) Scores(inst *rerank.Instance) []float64 {
	if s.sleep > 0 {
		time.Sleep(s.sleep)
	}
	out := make([]float64, len(inst.Items))
	if s.short {
		return out[:len(out)/2]
	}
	for i := range out {
		if s.bad {
			out[i] = math.NaN()
		} else {
			out[i] = inst.InitScores[i]
		}
	}
	return out
}

// fakeVersionDir creates an on-disk version directory that Scan and
// loadVersion's stat accept; the stub Loader never reads the file contents.
func fakeVersionDir(t *testing.T, root, label string) {
	t.Helper()
	dir := filepath.Join(root, label)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{ModelFile, ManifestFile} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("stub"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// labelFromModelPath recovers the version label a stub Loader was asked for.
func labelFromModelPath(modelPath string) string {
	return filepath.Base(filepath.Dir(modelPath))
}

// newTestRegistry builds a registry over a temp root with a stub loader whose
// scorers echo their version label; mutate tweaks the config before New.
func newTestRegistry(t *testing.T, labels []string, mutate func(*Config)) *Registry {
	t.Helper()
	root := t.TempDir()
	for _, l := range labels {
		fakeVersionDir(t, root, l)
	}
	cfg := Config{
		Root: root,
		Loader: func(modelPath string) (serve.Scorer, serve.Manifest, error) {
			label := labelFromModelPath(modelPath)
			return stubScorer{name: label},
				serve.Manifest{Dataset: label, Config: testGeometry()}, nil
		},
		Log: t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestLoadActivatesFirstThenStagesCandidate(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2"}, nil)

	if err := r.Load("v1"); err != nil {
		t.Fatal(err)
	}
	if pin := r.Active(); pin.Version != "v1" || pin.Canary {
		t.Fatalf("after first load: active %q canary %v", pin.Version, pin.Canary)
	}
	if err := r.Load("v2"); err != nil {
		t.Fatal(err)
	}
	// v2 is only a candidate: the active pin must still be v1.
	if pin := r.Active(); pin.Version != "v1" {
		t.Fatalf("candidate load changed active to %q", pin.Version)
	}

	// Reloading an already-active or already-staged version is a conflict.
	for _, label := range []string{"v1", "v2"} {
		if err := r.Load(label); !errors.Is(err, serve.ErrLifecycleConflict) {
			t.Fatalf("Load(%s) again: got %v, want ErrLifecycleConflict", label, err)
		}
	}
	// A version that is not on disk is unknown, as is an invalid label.
	if err := r.Load("v404"); !errors.Is(err, serve.ErrUnknownVersion) {
		t.Fatalf("Load(v404): got %v, want ErrUnknownVersion", err)
	}
	if err := r.Load("../evil"); !errors.Is(err, serve.ErrUnknownVersion) {
		t.Fatalf("Load(../evil): got %v, want ErrUnknownVersion", err)
	}
	if got := r.met.loads.Value(); got != 2 {
		t.Fatalf("loads counter %d, want 2", got)
	}
}

func TestPromoteAndRollback(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2"}, nil)
	if err := r.Promote("v1"); !errors.Is(err, serve.ErrLifecycleConflict) {
		t.Fatalf("promote with no candidate: %v", err)
	}
	if _, err := r.Rollback(); !errors.Is(err, serve.ErrLifecycleConflict) {
		t.Fatalf("rollback with no history: %v", err)
	}
	mustLoad := func(label string) {
		t.Helper()
		if err := r.Load(label); err != nil {
			t.Fatal(err)
		}
	}
	mustLoad("v1")
	mustLoad("v2")

	if err := r.Promote("v1"); !errors.Is(err, serve.ErrLifecycleConflict) {
		t.Fatalf("promote of non-candidate label: %v", err)
	}
	if err := r.Promote("v2"); err != nil {
		t.Fatal(err)
	}
	if pin := r.Active(); pin.Version != "v2" {
		t.Fatalf("after promote: active %q", pin.Version)
	}

	// With no candidate, rollback reverts to the previous active version.
	desc, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "v1") {
		t.Fatalf("rollback description %q does not name the restored version", desc)
	}
	if pin := r.Active(); pin.Version != "v1" {
		t.Fatalf("after rollback: active %q", pin.Version)
	}
	// History is consumed: a second rollback has nothing to revert to.
	if _, err := r.Rollback(); !errors.Is(err, serve.ErrLifecycleConflict) {
		t.Fatalf("second rollback: %v", err)
	}

	// A staged candidate is aborted by rollback without touching the active.
	mustLoad("v2")
	if _, err := r.Rollback(); err != nil {
		t.Fatal(err)
	}
	if pin := r.Active(); pin.Version != "v1" {
		t.Fatalf("candidate abort changed active to %q", pin.Version)
	}
	if got := r.met.rollbacks.With("manual").Value(); got != 2 {
		t.Fatalf("manual rollbacks %d, want 2", got)
	}
}

func TestVersionsListing(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2", "v3"}, nil)
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := r.Versions()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, v := range vs {
		states[v.Version] = v.State
	}
	want := map[string]string{"v1": "active", "v2": "candidate", "v3": "available"}
	for label, state := range want {
		if states[label] != state {
			t.Fatalf("states %v, want %v", states, want)
		}
	}
	if err := r.Promote("v2"); err != nil {
		t.Fatal(err)
	}
	vs, _ = r.Versions()
	states = map[string]string{}
	for _, v := range vs {
		states[v.Version] = v.State
	}
	if states["v2"] != "active" || states["v1"] != "previous" {
		t.Fatalf("post-promote states %v", states)
	}
}

func TestActivateLatest(t *testing.T) {
	r := newTestRegistry(t, []string{"v20250101T000000", "v20250601T000000"}, nil)
	label, err := r.ActivateLatest()
	if err != nil {
		t.Fatal(err)
	}
	if label != "v20250601T000000" {
		t.Fatalf("activated %q, want the newest", label)
	}
	if pin := r.Active(); pin.Version != label {
		t.Fatalf("active %q", pin.Version)
	}

	empty := newTestRegistry(t, nil, nil)
	if _, err := empty.ActivateLatest(); err == nil {
		t.Fatal("ActivateLatest on an empty root must fail")
	}
}

func TestWarmupRejections(t *testing.T) {
	cases := []struct {
		name   string
		scorer stubScorer
		mutate func(*Config)
		errHas string
	}{
		{"non-finite scores", stubScorer{bad: true}, nil, "non-finite"},
		{"wrong score count", stubScorer{short: true}, nil, "scores for"},
		{"over latency budget", stubScorer{sleep: 5 * time.Millisecond},
			func(c *Config) { c.WarmupBudget = time.Microsecond; c.WarmupRequests = 1 }, "budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newTestRegistry(t, []string{"v1"}, func(c *Config) {
				c.Loader = func(modelPath string) (serve.Scorer, serve.Manifest, error) {
					s := tc.scorer
					s.name = labelFromModelPath(modelPath)
					return s, serve.Manifest{Dataset: s.name, Config: testGeometry()}, nil
				}
				if tc.mutate != nil {
					tc.mutate(c)
				}
			})
			err := r.Load("v1")
			if err == nil {
				t.Fatal("warm-up accepted a disqualified version")
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Fatalf("error %q does not mention %q", err, tc.errHas)
			}
			// A failed load must leave the registry unchanged and count the
			// failure.
			if pin := r.Active(); pin.Version != "none" {
				t.Fatalf("failed load activated %q", pin.Version)
			}
			if got := r.met.warmupFailures.Value(); got != 1 {
				t.Fatalf("warmupFailures %d, want 1", got)
			}
		})
	}
}

func TestWarmupGeometryMismatchWithGolden(t *testing.T) {
	// An operator-supplied golden set pins the production geometry: a version
	// whose manifest cannot accept it must be rejected at load time.
	other := testGeometry()
	other.UserDim = 7
	golden := SyntheticGolden(testGeometry(), 2, 4)
	r := newTestRegistry(t, []string{"v1"}, func(c *Config) {
		c.Golden = golden
		c.Loader = func(modelPath string) (serve.Scorer, serve.Manifest, error) {
			return stubScorer{name: "v1"}, serve.Manifest{Dataset: "v1", Config: other}, nil
		}
	})
	if err := r.Load("v1"); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("geometry-incompatible version passed warm-up: %v", err)
	}
}

func TestSyntheticGoldenDeterministic(t *testing.T) {
	a := SyntheticGolden(testGeometry(), 4, 6)
	b := SyntheticGolden(testGeometry(), 4, 6)
	if len(a) != 4 || len(a[0].Items) != 6 {
		t.Fatalf("shape %d requests, %d items", len(a), len(a[0].Items))
	}
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			t.Fatalf("request %d differs between identical generations", i)
		}
	}
}

func TestCanaryRoutingFractionAndDeterminism(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2"}, func(c *Config) {
		c.CanaryPercent = 30
	})
	if err := r.Load("v1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("v2"); err != nil {
		t.Fatal(err)
	}
	canary := 0
	for key := uint64(0); key < 10_000; key++ {
		pin := r.Pick(key)
		if pin.Canary {
			if pin.Version != "v2" {
				t.Fatalf("canary pin is %q", pin.Version)
			}
			canary++
		} else if pin.Version != "v1" {
			t.Fatalf("primary pin is %q", pin.Version)
		}
		// Deterministic: the same key must land on the same side.
		if again := r.Pick(key); again.Canary != pin.Canary {
			t.Fatalf("key %d flapped between canary and primary", key)
		}
	}
	// The split is exact over one full period of the key space.
	if canary != 3000 {
		t.Fatalf("canary got %d/10000 keys, want exactly 3000", canary)
	}

	// CanaryPercent 0 routes nothing to the candidate.
	zero := newTestRegistry(t, []string{"v1", "v2"}, nil)
	for _, l := range []string{"v1", "v2"} {
		if err := zero.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	for key := uint64(0); key < 10_000; key++ {
		if zero.Pick(key).Canary {
			t.Fatal("canary pick with CanaryPercent 0")
		}
	}
}

func TestAutoRollbackDemotesBadCanary(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2"}, func(c *Config) {
		c.CanaryPercent = 50
		c.MinCanarySamples = 20
		c.RollbackExcess = 0.10
	})
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	// Healthy active traffic, then a canary degrading on every request: once
	// past the minimum sample its excess rate trips the auto-rollback.
	var canaryKey, primaryKey uint64
	for k := uint64(0); k < 10_000; k++ {
		if r.Pick(k).Canary {
			canaryKey = k
		} else {
			primaryKey = k
		}
	}
	for i := 0; i < 100; i++ {
		pin := r.Pick(primaryKey)
		pin.Observe("ok", time.Millisecond)
	}
	for i := 0; i < 19; i++ {
		pin := r.Pick(canaryKey)
		if !pin.Canary {
			t.Fatal("candidate demoted before the minimum sample")
		}
		pin.Observe("deadline", time.Millisecond)
	}
	// The 20th degraded canary request crosses MinCanarySamples and fires the
	// rollback exactly once.
	r.Pick(canaryKey).Observe("deadline", time.Millisecond)
	if pin := r.Pick(canaryKey); pin.Canary {
		t.Fatal("degrading canary was not demoted")
	}
	if pin := r.Active(); pin.Version != "v1" {
		t.Fatalf("active after auto-rollback: %q", pin.Version)
	}
	if got := r.met.rollbacks.With("auto").Value(); got != 1 {
		t.Fatalf("auto rollbacks %d, want exactly 1", got)
	}
}

func TestAutoRollbackSparesHealthyCanary(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2"}, func(c *Config) {
		c.CanaryPercent = 50
		c.MinCanarySamples = 10
	})
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	var canaryKey uint64
	for k := uint64(0); k < 10_000; k++ {
		if r.Pick(k).Canary {
			canaryKey = k
			break
		}
	}
	for i := 0; i < 200; i++ {
		r.Pick(canaryKey).Observe("ok", time.Millisecond)
	}
	if pin := r.Pick(canaryKey); !pin.Canary || pin.Version != "v2" {
		t.Fatalf("healthy canary demoted: %+v", pin)
	}
	if got := r.met.rollbacks.With("auto").Value(); got != 0 {
		t.Fatalf("auto rollbacks %d, want 0", got)
	}
}

func TestObserveFeedsPerVersionCounters(t *testing.T) {
	r := newTestRegistry(t, []string{"v1"}, nil)
	if err := r.Load("v1"); err != nil {
		t.Fatal(err)
	}
	pin := r.Active()
	pin.Observe("ok", time.Millisecond)
	pin.Observe("deadline", 2*time.Millisecond)
	vs, err := r.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Requests != 2 || vs[0].Degraded != 1 {
		t.Fatalf("version status %+v", vs)
	}
	if got := r.met.requests.With("v1").Value(); got != 2 {
		t.Fatalf("requests{v1} %d", got)
	}
	if got := r.met.degraded.With("v1").Value(); got != 1 {
		t.Fatalf("degraded{v1} %d", got)
	}
	if got := r.met.latency.With("v1").Snapshot().Count; got != 2 {
		t.Fatalf("latency{v1} count %d", got)
	}
}

func TestMetricsVisibleAtLoadTime(t *testing.T) {
	// The CI smoke job asserts both version labels on /metrics right after a
	// load, before the new version has served anything — the series must be
	// created eagerly at zero.
	r := newTestRegistry(t, []string{"v1", "v2"}, nil)
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	text := string(exposition(t, r))
	for _, want := range []string{
		`rapid_model_requests_total{version="v1"} 0`,
		`rapid_model_requests_total{version="v2"} 0`,
		`rapid_model_request_latency_seconds_count{version="v2"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func exposition(t *testing.T, r *Registry) []byte {
	t.Helper()
	var b strings.Builder
	if err := r.ObsRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return []byte(b.String())
}

// TestOnSwapFiresOnEveryTransition: the swap hook (the serving layer's
// state-cache invalidation point) must fire on every lifecycle publish —
// activate, stage, promote, rollback — and never spuriously.
func TestOnSwapFiresOnEveryTransition(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2"}, nil)
	swaps := 0
	r.SetOnSwap(func() { swaps++ })

	steps := []struct {
		op   func() error
		want int
	}{
		{func() error { return r.Load("v1") }, 1},                // activate
		{func() error { return r.Load("v2") }, 2},                // stage candidate
		{func() error { return r.Promote("v2") }, 3},             // promote
		{func() error { _, err := r.Rollback(); return err }, 4}, // revert to v1
		{func() error { _, err := r.Rollback(); return err }, 4}, // nothing left: no swap
	}
	for i, s := range steps {
		err := s.op()
		if i == len(steps)-1 {
			if err == nil {
				t.Fatal("empty rollback should conflict")
			}
		} else if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if swaps != s.want {
			t.Fatalf("step %d: %d swaps, want %d", i, swaps, s.want)
		}
	}
}
