package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rerank"
	"repro/internal/serve"
)

// offsetScorer shifts every score by a per-version offset, so a response's
// score range proves which model actually scored it — a torn (scorer,
// version-label) pair becomes detectable from the outside.
type offsetScorer struct {
	name   string
	offset float64
}

func (s offsetScorer) Name() string { return s.name }
func (s offsetScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return s.scores(inst), nil
}

// ScoreBatch makes offsetScorer a serve.BatchScorer, so the live-traffic
// churn test exercises the coalesced multi-request scoring path too.
func (s offsetScorer) ScoreBatch(_ context.Context, insts []*rerank.Instance) ([][]float64, error) {
	out := make([][]float64, len(insts))
	for i, inst := range insts {
		out[i] = s.scores(inst)
	}
	return out, nil
}

func (s offsetScorer) scores(inst *rerank.Instance) []float64 {
	out := make([]float64, len(inst.Items))
	for i := range out {
		out[i] = s.offset + inst.InitScores[i]
	}
	return out
}

var versionOffsets = map[string]float64{"v1": 1000, "v2": 2000, "v3": 3000, "v4": 4000}

func offsetLoader(modelPath string) (serve.Scorer, serve.Manifest, error) {
	label := labelFromModelPath(modelPath)
	return offsetScorer{name: label, offset: versionOffsets[label]},
		serve.Manifest{Dataset: label, Config: testGeometry()}, nil
}

// TestConcurrentSwapCoherence hammers Pick from many goroutines while a
// lifecycle driver loads, promotes and rolls back versions as fast as it can.
// Every pin must be a coherent triple: the scorer's name, the manifest's
// dataset and the version label were all stamped with the version at load
// time, so any torn read across the swap would surface as a mismatch. Run
// with -race.
func TestConcurrentSwapCoherence(t *testing.T) {
	labels := []string{"v1", "v2", "v3", "v4"}
	r := newTestRegistry(t, labels, func(c *Config) {
		c.Loader = offsetLoader
		c.CanaryPercent = 25
	})
	if err := r.Load("v1"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swaps atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // lifecycle driver
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			label := labels[i%len(labels)]
			if err := r.Load(label); err != nil && !errors.Is(err, serve.ErrLifecycleConflict) {
				t.Errorf("Load(%s): %v", label, err)
				return
			}
			if err := r.Promote(label); err != nil && !errors.Is(err, serve.ErrLifecycleConflict) {
				t.Errorf("Promote(%s): %v", label, err)
				return
			}
			swaps.Add(1)
			if i%7 == 0 {
				if _, err := r.Rollback(); err != nil && !errors.Is(err, serve.ErrLifecycleConflict) {
					t.Errorf("Rollback: %v", err)
					return
				}
			}
		}
	}()

	var served atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			key := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				key = key*6364136223846793005 + 1442695040888963407
				pin := r.Pick(key)
				if pin.Version == "none" {
					t.Error("served the no-model pin after activation")
					return
				}
				if pin.Scorer.Name() != pin.Version || pin.Manifest.Dataset != pin.Version {
					t.Errorf("torn pin: scorer %q, manifest %q, version %q",
						pin.Scorer.Name(), pin.Manifest.Dataset, pin.Version)
					return
				}
				pin.Observe("ok", time.Microsecond)
				served.Add(1)
			}
		}(uint64(g) + 1)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if served.Load() == 0 || swaps.Load() == 0 {
		t.Fatalf("test exercised nothing: %d picks, %d swaps", served.Load(), swaps.Load())
	}
	t.Logf("%d coherent picks across %d version swaps", served.Load(), swaps.Load())
}

// TestLifecycleUnderLiveHTTPTraffic is the end-to-end acceptance check: a
// provider server takes continuous /rerank traffic while the admin API loads,
// promotes and rolls back versions. Not a single request may be dropped or
// fail, every response must carry a version label whose score offset matches
// (no torn swaps observable from outside), and /metrics must expose the
// per-version series for both versions afterwards. Run with -race.
func TestLifecycleUnderLiveHTTPTraffic(t *testing.T) {
	r := newTestRegistry(t, []string{"v1", "v2"}, func(c *Config) {
		c.Loader = offsetLoader
		c.CanaryPercent = 30
	})
	if err := r.Load("v1"); err != nil {
		t.Fatal(err)
	}
	const token = "test-admin-token"
	srv := serve.NewProviderServer(r, serve.Config{
		Registry:    r.ObsRegistry(),
		Admin:       r,
		AdminToken:  token,
		Budget:      2 * time.Second, // stub scoring is instant; no degrades
		MaxInFlight: 64,
		QueueWait:   2 * time.Second, // nothing may shed in this test
		// Explicit coalescing: concurrent clients must batch (and split per
		// pinned version) without dropping or tearing a single request.
		Batch: serve.BatchConfig{MaxBatch: 8, MaxWait: time.Millisecond},
	})
	srv.Log = t.Logf
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := make([][]byte, 8)
	for i, req := range SyntheticGolden(testGeometry(), 8, 5) {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}

	admin := func(path, version string) int {
		body := []byte("{}")
		if version != "" {
			body = []byte(fmt.Sprintf(`{"version":%q}`, version))
		}
		req, _ := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("admin %s: %v", path, err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, failed atomic.Int64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/rerank", "application/json",
					bytes.NewReader(bodies[(g+i)%len(bodies)]))
				if err != nil {
					failed.Add(1)
					t.Errorf("request error: %v", err)
					return
				}
				var rr serve.RerankResponse
				decErr := json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					t.Errorf("dropped request: status %d", resp.StatusCode)
					return
				}
				if decErr != nil {
					failed.Add(1)
					t.Errorf("decode: %v", decErr)
					return
				}
				wantOffset, known := versionOffsets[rr.ModelVersion]
				if !known {
					failed.Add(1)
					t.Errorf("response labeled with unknown version %q", rr.ModelVersion)
					return
				}
				if !rr.Degraded && len(rr.Scores) > 0 &&
					(rr.Scores[0] < wantOffset || rr.Scores[0] >= wantOffset+1000) {
					failed.Add(1)
					t.Errorf("torn response: version %q but top score %v", rr.ModelVersion, rr.Scores[0])
					return
				}
				served.Add(1)
			}
		}(g)
	}

	// Lifecycle churn through the public admin API while traffic flows.
	deadline := time.After(400 * time.Millisecond)
churn:
	for i := 0; ; i++ {
		select {
		case <-deadline:
			break churn
		default:
		}
		next := []string{"v2", "v1"}[i%2]
		if code := admin("/admin/models/load", next); code != http.StatusOK && code != http.StatusConflict {
			t.Fatalf("load %s: status %d", next, code)
		}
		time.Sleep(10 * time.Millisecond) // let canary traffic hit the candidate
		if code := admin("/admin/models/promote", next); code != http.StatusOK && code != http.StatusConflict {
			t.Fatalf("promote %s: status %d", next, code)
		}
		if i%3 == 2 {
			if code := admin("/admin/models/rollback", ""); code != http.StatusOK && code != http.StatusConflict {
				t.Fatalf("rollback: status %d", code)
			}
		}
	}
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d requests dropped or torn during swaps", failed.Load(), served.Load()+failed.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served")
	}

	// Both versions must be visible as per-version series on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`rapid_model_requests_total{version="v1"}`,
		`rapid_model_requests_total{version="v2"}`,
		`rapid_model_request_latency_seconds_bucket{version="v1"`,
		`rapid_model_request_latency_seconds_bucket{version="v2"`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	t.Logf("%d requests served with zero drops across lifecycle churn", served.Load())
}
