package registry

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rerank"
	"repro/internal/serve"
)

// Config parameterizes a Registry. The zero value of every field falls back
// to the listed default; Root is required.
type Config struct {
	// Root is the versioned model store directory (one subdirectory per
	// published version).
	Root string
	// CanaryPercent is the share of traffic (0–100) routed to a staged
	// candidate version. 0 disables canary routing: a candidate then only
	// receives shadow traffic until promoted.
	CanaryPercent float64
	// Shadow enables asynchronous shadow scoring of the candidate on a
	// bounded worker pool (default off).
	Shadow bool
	// ShadowWorkers and ShadowQueue bound the shadow pool (defaults 2 and
	// 64). When the queue is full, shadow work is shed and counted — never
	// queued unboundedly and never allowed to delay responses.
	ShadowWorkers int
	ShadowQueue   int
	// ShadowK is the ranking depth for the shadow divergence metrics
	// (overlap@k, ILD@k; default 10).
	ShadowK int
	// Golden is the warm-up request set replayed against every loaded
	// version before it may serve traffic. nil synthesizes WarmupRequests
	// deterministic requests from the version's own manifest geometry.
	Golden []serve.RerankRequest
	// WarmupRequests is the synthesized golden-set size (default 16).
	WarmupRequests int
	// WarmupBudget is the per-request latency budget during warm-up
	// (default 500ms — deliberately looser than the serving budget: warm-up
	// pays first-touch allocation costs, and its job is catching models
	// that are orders of magnitude off, not enforcing the p99).
	WarmupBudget time.Duration
	// RollbackExcess is the canary auto-rollback threshold: the candidate
	// is demoted when its degrade rate exceeds the active model's by more
	// than this fraction (default 0.10).
	RollbackExcess float64
	// MinCanarySamples is the minimum canary traffic before the
	// auto-rollback comparison runs (default 50) — a single unlucky request
	// must not kill a healthy candidate.
	MinCanarySamples int64
	// Registry receives the lifecycle metrics; nil means a private one.
	// Pass the serving registry so /metrics carries both namespaces.
	Registry *obs.Registry
	// Loader loads one version's artifacts; nil uses serve.LoadScorer, which
	// returns the neural model or — for manifests naming a diversifier — the
	// weightless classic-diversifier adapter. The seam exists for tests and
	// fault injection.
	Loader func(modelPath string) (serve.Scorer, serve.Manifest, error)
	// Log receives operational messages; nil uses log.Printf.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ShadowWorkers <= 0 {
		c.ShadowWorkers = 2
	}
	if c.ShadowQueue <= 0 {
		c.ShadowQueue = 64
	}
	if c.ShadowK <= 0 {
		c.ShadowK = 10
	}
	if c.WarmupRequests <= 0 {
		c.WarmupRequests = 16
	}
	if c.WarmupBudget <= 0 {
		c.WarmupBudget = 500 * time.Millisecond
	}
	if c.RollbackExcess <= 0 {
		c.RollbackExcess = 0.10
	}
	if c.MinCanarySamples <= 0 {
		c.MinCanarySamples = 50
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Loader == nil {
		c.Loader = serve.LoadScorer
	}
	if c.Log == nil {
		c.Log = log.Printf
	}
	return c
}

// version is one loaded model version with its served-traffic counters. The
// counters live on the version (not the state snapshot) so they accumulate
// across state swaps for as long as the version stays loaded.
type version struct {
	label  string
	scorer serve.Scorer
	man    serve.Manifest

	requests atomic.Int64
	degraded atomic.Int64
	// demoted latches the auto-rollback decision so concurrent observers
	// race to exactly one demotion.
	demoted atomic.Bool
}

func (v *version) degradeRate() float64 {
	n := v.requests.Load()
	if n == 0 {
		return 0
	}
	return float64(v.degraded.Load()) / float64(n)
}

// state is one immutable lifecycle snapshot. Mutations build a new state
// and publish it with a single atomic store; the scoring path loads it once
// per request, which is what makes every served triple coherent.
type state struct {
	active    *version
	candidate *version
	previous  *version // rollback target after a promotion
}

// Registry owns the loaded model versions and implements serve.Provider.
// Scoring (Active/Pick/Observe) is lock-free; lifecycle operations (Load,
// Promote, Rollback) serialize on mu and publish fresh state atomically.
type Registry struct {
	cfg       Config
	mu        sync.Mutex
	state     atomic.Pointer[state]
	onSwap    func() // fired under mu after every state publish; see SetOnSwap
	met       *lifecycleMetrics
	shadow    *shadowPool
	closeOnce sync.Once
}

// SetOnSwap registers a hook fired after every lifecycle state transition
// (load, promote, rollback — manual or automatic). The serving layer wires
// it to Server.FlushStateCache so no cached encoded user state survives a
// model swap. The hook runs under the registry's lifecycle mutex: it must be
// fast and must not call back into the Registry. Call before serving starts;
// a nil f clears the hook.
func (r *Registry) SetOnSwap(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onSwap = f
}

// swap publishes a new lifecycle state and fires the swap hook. Callers must
// hold r.mu — that ordering is what lets the hook's cache flush be complete:
// any scoring pass that cached a state under the old pin either finished
// before the store (flushed now) or picks up the new state's pin.
func (r *Registry) swap(st *state) {
	r.state.Store(st)
	if r.onSwap != nil {
		r.onSwap()
	}
}

// New opens a registry over cfg.Root. No version is loaded yet: call Load
// (directly or via ActivateLatest) before serving.
func New(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	if cfg.Root == "" {
		return nil, fmt.Errorf("registry: Config.Root is required")
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create root: %w", err)
	}
	r := &Registry{cfg: cfg, met: newLifecycleMetrics(cfg.Registry)}
	r.state.Store(&state{})
	if cfg.Shadow {
		r.shadow = newShadowPool(cfg.ShadowWorkers, cfg.ShadowQueue, cfg.ShadowK, r.met, cfg.Log)
	}
	return r, nil
}

// Close drains the shadow pool; it is idempotent. Lifecycle and scoring
// methods must not be called after Close.
func (r *Registry) Close() {
	r.closeOnce.Do(func() {
		if r.shadow != nil {
			r.shadow.close()
		}
	})
}

// ObsRegistry exposes the metrics registry (the one from Config, or the
// private default) so a process can serve one /metrics namespace.
func (r *Registry) ObsRegistry() *obs.Registry { return r.cfg.Registry }

// Active implements serve.Provider.
func (r *Registry) Active() serve.Pinned {
	return r.pinOf(r.state.Load().active, false)
}

// Pick implements serve.Provider: the active model, or — while a candidate
// is staged — the candidate for the configured fraction of the routing key
// space. The split is deterministic in the key, so a given request always
// lands on the same side while the state holds.
func (r *Registry) Pick(key uint64) serve.Pinned {
	st := r.state.Load()
	v, canary := st.active, false
	if st.candidate != nil && r.cfg.CanaryPercent > 0 &&
		float64(key%10_000) < r.cfg.CanaryPercent*100 {
		v, canary = st.candidate, true
	}
	pin := r.pinOf(v, canary)
	if !canary && st.candidate != nil && r.shadow != nil {
		cand := st.candidate
		pin.ShadowVersion = cand.label
		pin.ShadowBatch = func(insts []*rerank.Instance, scores [][]float64) {
			r.shadow.submitBatch(cand, insts, scores)
		}
	}
	return pin
}

func (r *Registry) pinOf(v *version, canary bool) serve.Pinned {
	if v == nil {
		// Defensive: serving before the first Load. The pin carries a zero
		// geometry, so every request fails validation with a 4xx instead of
		// panicking the scoring path.
		return serve.Pinned{Scorer: noModel{}, Version: "none"}
	}
	return serve.Pinned{
		Scorer:   v.scorer,
		Manifest: v.man,
		Version:  v.label,
		Canary:   canary,
		Observe: func(outcome string, d time.Duration) {
			r.observe(v, canary, outcome, d)
		},
	}
}

// noModel is the scorer served before any version is loaded; requests never
// reach it because the zero manifest geometry rejects them at validation.
type noModel struct{}

func (noModel) Score(context.Context, *rerank.Instance) ([]float64, error) {
	return nil, errors.New("no model version loaded")
}
func (noModel) Name() string { return "none" }

// observe lands one request outcome in the per-version metrics and, for
// canary traffic, evaluates the auto-rollback condition. It runs on the
// request path: a handful of atomic ops, no locks unless a rollback fires.
func (r *Registry) observe(v *version, canary bool, outcome string, d time.Duration) {
	v.requests.Add(1)
	r.met.requests.With(v.label).Inc()
	r.met.latency.With(v.label).ObserveDuration(d)
	if outcome != "ok" {
		v.degraded.Add(1)
		r.met.degraded.With(v.label).Inc()
	}
	if canary {
		r.maybeAutoRollback(v)
	}
}

// maybeAutoRollback demotes the candidate when its degrade rate exceeds the
// active model's by more than the configured excess, after a minimum sample.
// The demoted latch makes the decision fire exactly once even with many
// concurrent observers.
func (r *Registry) maybeAutoRollback(cand *version) {
	st := r.state.Load()
	if st.candidate != cand || st.active == nil {
		return
	}
	n := cand.requests.Load()
	if n < r.cfg.MinCanarySamples {
		return
	}
	candRate := cand.degradeRate()
	actRate := st.active.degradeRate()
	if candRate <= actRate+r.cfg.RollbackExcess {
		return
	}
	if !cand.demoted.CompareAndSwap(false, true) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st = r.state.Load()
	if st.candidate != cand {
		return // a racing lifecycle op already moved it
	}
	r.swap(&state{active: st.active, previous: st.previous})
	r.met.rollbacks.With("auto").Inc()
	r.cfg.Log("registry: auto-rollback of canary %s: degrade rate %.4f exceeds active %s rate %.4f by more than %.2f (%d canary requests)",
		cand.label, candRate, st.active.label, actRate, r.cfg.RollbackExcess, n)
}

// Load implements the first two stages of the promotion pipeline for one
// on-disk version: read and strictly validate the artifacts, replay the
// golden warm-up set, and stage the version as the canary candidate — or
// activate it directly when nothing is active yet (process startup).
func (r *Registry) Load(label string) error {
	if err := ValidLabel(label); err != nil {
		return fmt.Errorf("%w: %v", serve.ErrUnknownVersion, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state.Load()
	if st.active != nil && st.active.label == label {
		return fmt.Errorf("%w: version %s is already active", serve.ErrLifecycleConflict, label)
	}
	if st.candidate != nil && st.candidate.label == label {
		return fmt.Errorf("%w: version %s is already the candidate", serve.ErrLifecycleConflict, label)
	}
	v, err := r.loadVersion(label)
	if err != nil {
		return err
	}
	// Touch the per-version series so /metrics shows the new version at
	// zero the moment it is loaded, not at its first request.
	r.met.requests.With(label)
	r.met.degraded.With(label)
	r.met.latency.With(label)
	r.met.loads.Inc()
	if st.active == nil {
		r.swap(&state{active: v})
		r.cfg.Log("registry: activated %s (no prior active version)", label)
		return nil
	}
	r.swap(&state{active: st.active, candidate: v, previous: st.previous})
	r.cfg.Log("registry: staged %s as canary candidate (%.1f%% of traffic, shadow %v)",
		label, r.cfg.CanaryPercent, r.shadow != nil)
	return nil
}

// loadVersion reads one version from disk and warm-up validates it.
func (r *Registry) loadVersion(label string) (*version, error) {
	dir := filepath.Join(r.cfg.Root, label)
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("%w: %s not found in %s", serve.ErrUnknownVersion, label, r.cfg.Root)
	}
	scorer, man, err := r.cfg.Loader(ModelPath(r.cfg.Root, label))
	if err != nil {
		return nil, fmt.Errorf("registry: load %s: %w", label, err)
	}
	if err := r.warmup(label, scorer, man); err != nil {
		r.met.warmupFailures.Inc()
		return nil, fmt.Errorf("registry: warm-up of %s failed: %w", label, err)
	}
	return &version{label: label, scorer: scorer, man: man}, nil
}

// ActivateLatest loads the newest on-disk version as the active model — the
// process-startup path of rapidserve -model-root.
func (r *Registry) ActivateLatest() (string, error) {
	versions, err := Scan(r.cfg.Root)
	if err != nil {
		return "", err
	}
	if len(versions) == 0 {
		return "", fmt.Errorf("registry: no versions in %s (publish one with rapidtrain -publish)", r.cfg.Root)
	}
	latest := versions[len(versions)-1]
	return latest, r.Load(latest)
}

// Promote makes the named candidate the active model; the displaced active
// version stays loaded as the rollback target.
func (r *Registry) Promote(label string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state.Load()
	if st.candidate == nil {
		return fmt.Errorf("%w: no candidate staged (POST /admin/models/load first)", serve.ErrLifecycleConflict)
	}
	if st.candidate.label != label {
		return fmt.Errorf("%w: candidate is %s, not %s", serve.ErrLifecycleConflict, st.candidate.label, label)
	}
	r.swap(&state{active: st.candidate, previous: st.active})
	r.met.promotions.Inc()
	r.cfg.Log("registry: promoted %s to active (previous %s kept for rollback)", label, st.active.label)
	return nil
}

// Rollback aborts the staged candidate, or — with no candidate — reverts
// the active model to the previous one. Exactly one of the two; with
// neither a candidate nor a previous version it is a conflict.
func (r *Registry) Rollback() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state.Load()
	switch {
	case st.candidate != nil:
		r.swap(&state{active: st.active, previous: st.previous})
		r.met.rollbacks.With("manual").Inc()
		desc := fmt.Sprintf("aborted candidate %s; active stays %s", st.candidate.label, st.active.label)
		r.cfg.Log("registry: %s", desc)
		return desc, nil
	case st.previous != nil:
		r.swap(&state{active: st.previous})
		r.met.rollbacks.With("manual").Inc()
		desc := fmt.Sprintf("reverted active %s to %s", st.active.label, st.previous.label)
		r.cfg.Log("registry: %s", desc)
		return desc, nil
	default:
		return "", fmt.Errorf("%w: nothing to roll back (no candidate, no previous version)", serve.ErrLifecycleConflict)
	}
}

// Versions implements the admin listing: every committed on-disk version
// plus any loaded version, each with its lifecycle state and served-traffic
// counters.
func (r *Registry) Versions() ([]serve.VersionStatus, error) {
	onDisk, err := Scan(r.cfg.Root)
	if err != nil {
		return nil, err
	}
	st := r.state.Load()
	stateOf := map[string]*version{}
	labelState := map[string]string{}
	if st.active != nil {
		stateOf[st.active.label], labelState[st.active.label] = st.active, "active"
	}
	if st.candidate != nil {
		stateOf[st.candidate.label], labelState[st.candidate.label] = st.candidate, "candidate"
	}
	if st.previous != nil {
		stateOf[st.previous.label], labelState[st.previous.label] = st.previous, "previous"
	}
	seen := map[string]bool{}
	var out []serve.VersionStatus
	add := func(label string) {
		if seen[label] {
			return
		}
		seen[label] = true
		vs := serve.VersionStatus{Version: label, State: "available"}
		if v := stateOf[label]; v != nil {
			vs.State = labelState[label]
			vs.Dataset = v.man.Dataset
			vs.Requests = v.requests.Load()
			vs.Degraded = v.degraded.Load()
		}
		out = append(out, vs)
	}
	for _, label := range onDisk {
		add(label)
	}
	// Loaded versions whose directory vanished (operator cleanup) still
	// serve; list them so the admin view matches reality.
	for label := range stateOf {
		add(label)
	}
	return out, nil
}

// Rescan re-reads the store root (wired to SIGHUP in rapidserve) and logs
// the available versions; it returns the scan so callers can act on it.
func (r *Registry) Rescan() ([]string, error) {
	versions, err := Scan(r.cfg.Root)
	if err != nil {
		return nil, err
	}
	st := r.state.Load()
	active := "none"
	if st.active != nil {
		active = st.active.label
	}
	r.cfg.Log("registry: rescan of %s found %d version(s) %v (active %s)", r.cfg.Root, len(versions), versions, active)
	return versions, nil
}
