package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

func TestPublishScanLoadRoundTrip(t *testing.T) {
	root := t.TempDir()
	cfg := testGeometry()
	m := core.New(cfg)
	man := serve.Manifest{Dataset: "test", Lambda: 0.9, Config: cfg}

	label, err := Publish(root, "v1", m.ParamSet(), man)
	if err != nil {
		t.Fatal(err)
	}
	if label != "v1" {
		t.Fatalf("label %q", label)
	}
	versions, err := Scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 || versions[0] != "v1" {
		t.Fatalf("scan %v", versions)
	}
	// The published version must be loadable by the real production loader,
	// not just present on disk.
	loaded, gotMan, err := serve.LoadModel(ModelPath(root, "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if gotMan.Dataset != "test" || gotMan.Config.Hidden != cfg.Hidden {
		t.Fatalf("manifest %+v", gotMan)
	}
	if loaded.Name() == "" {
		t.Fatal("loaded model has no name")
	}
	// No staging residue may survive a successful publish.
	entries, _ := os.ReadDir(root)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("staging residue %s left in root", e.Name())
		}
	}

	// Publishing the same label twice is an error, not an overwrite.
	if _, err := Publish(root, "v1", m.ParamSet(), man); err == nil {
		t.Fatal("duplicate label accepted")
	}
	// An empty label generates distinct timestamped ones even within the same
	// second.
	a, err := Publish(root, "", m.ParamSet(), man)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Publish(root, "", m.ParamSet(), man)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("generated labels collide: %q", a)
	}
	versions, _ = Scan(root)
	if len(versions) != 3 {
		t.Fatalf("scan after publishes: %v", versions)
	}
}

func TestPublishRejectsBadLabels(t *testing.T) {
	root := t.TempDir()
	m := core.New(testGeometry())
	man := serve.Manifest{Config: testGeometry()}
	for _, label := range []string{".hidden", "a/b", `a\b`, "../escape"} {
		if _, err := Publish(root, label, m.ParamSet(), man); err == nil {
			t.Fatalf("label %q accepted", label)
		}
	}
}

func TestValidLabel(t *testing.T) {
	for _, ok := range []string{"v1", "v20250101T000000", "release-2_final.1"} {
		if err := ValidLabel(ok); err != nil {
			t.Fatalf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", ".", ".staging-x", "a/b", `a\b`, "../up"} {
		if err := ValidLabel(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestScanSkipsIncompleteAndHidden(t *testing.T) {
	root := t.TempDir()
	fakeVersionDir(t, root, "complete")

	// Weights without a manifest: not a version.
	noMan := filepath.Join(root, "no-manifest")
	os.MkdirAll(noMan, 0o755)
	os.WriteFile(filepath.Join(noMan, ModelFile), []byte("x"), 0o644)
	// Manifest without weights: not a version.
	noModel := filepath.Join(root, "no-model")
	os.MkdirAll(noModel, 0o755)
	os.WriteFile(filepath.Join(noModel, ManifestFile), []byte("x"), 0o644)
	// In-flight staging directory: hidden, never listed.
	staging := filepath.Join(root, ".staging-123")
	os.MkdirAll(staging, 0o755)
	os.WriteFile(filepath.Join(staging, ModelFile), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(staging, ManifestFile), []byte("x"), 0o644)
	// A stray file in the root is not a version either.
	os.WriteFile(filepath.Join(root, "README"), []byte("x"), 0o644)

	versions, err := Scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 || versions[0] != "complete" {
		t.Fatalf("scan %v, want [complete]", versions)
	}
}

func TestScanSortsOldestFirst(t *testing.T) {
	root := t.TempDir()
	for _, l := range []string{"v20250601T000000", "v20240101T000000", "v20250101T000000"} {
		fakeVersionDir(t, root, l)
	}
	versions, err := Scan(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v20240101T000000", "v20250101T000000", "v20250601T000000"}
	for i := range want {
		if versions[i] != want[i] {
			t.Fatalf("scan %v, want %v", versions, want)
		}
	}
}
