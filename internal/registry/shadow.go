package registry

import (
	"context"
	"math"
	"sync"

	"repro/internal/metrics"
	"repro/internal/rerank"
	"repro/internal/serve"
)

// shadowJob is one batch of requests to score against the candidate off the
// request path: the instances the active model just served and the primary
// scores (each aligned with its instance's Items). The serving layer
// forwards whole scored batches, so shadow scoring reuses the batch shape —
// one queue slot and, when the candidate batches, one ScoreBatch call.
type shadowJob struct {
	cand    *version
	insts   []*rerank.Instance
	primary [][]float64
}

// shadowPool scores shadow jobs on a fixed set of workers behind a bounded
// queue. Submission never blocks: when the queue is full the batch is shed
// and every instance it carried is counted. The choice to shed rather than
// queue is deliberate — shadow scoring is an observability signal, and an
// unbounded queue would convert a slow candidate into unbounded memory
// growth and stale divergence numbers. A shed sample only widens the
// confidence interval.
type shadowPool struct {
	jobs chan shadowJob
	wg   sync.WaitGroup
	met  *lifecycleMetrics
	k    int
	log  func(format string, args ...any)
}

func newShadowPool(workers, queue, k int, met *lifecycleMetrics, log func(string, ...any)) *shadowPool {
	p := &shadowPool{jobs: make(chan shadowJob, queue), met: met, k: k, log: log}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.score(job)
			}
		}()
	}
	return p
}

// submitBatch enqueues one shadow batch or sheds it; it never blocks the
// caller (a serving-layer scoring worker).
func (p *shadowPool) submitBatch(cand *version, insts []*rerank.Instance, primary [][]float64) {
	select {
	case p.jobs <- shadowJob{cand: cand, insts: insts, primary: primary}:
	default:
		p.met.shadowShed.Add(int64(len(insts)))
	}
}

// close drains the queue and stops the workers.
func (p *shadowPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// score runs one shadow batch: incompatible instances are filtered, the
// rest score through the candidate (batched when it supports ScoreBatch),
// and each instance's divergence metrics land individually. A panicking
// candidate is counted, never propagated — shadow mode must be unable to
// hurt the serving process.
func (p *shadowPool) score(job shadowJob) {
	defer func() {
		if r := recover(); r != nil {
			p.met.shadowErrors.Inc()
			p.log("registry: recovered shadow scoring panic on %s: %v", job.cand.label, r)
		}
	}()
	cfg := job.cand.man.Config
	insts := make([]*rerank.Instance, 0, len(job.insts))
	primary := make([][]float64, 0, len(job.insts))
	for i, inst := range job.insts {
		if cfg.UserDim != len(inst.UserFeat) || cfg.Topics != inst.M ||
			(len(inst.Items) > 0 && cfg.ItemDim != len(inst.ItemFeat(inst.Items[0]))) {
			// The instance was validated against the active model's geometry;
			// a candidate with a different one cannot score it. Canary traffic
			// still evaluates such a candidate (its requests validate against
			// its own manifest).
			p.met.shadowIncompatible.Inc()
			continue
		}
		insts = append(insts, inst)
		primary = append(primary, job.primary[i])
	}
	if len(insts) == 0 {
		return
	}
	var scores [][]float64
	if bs, ok := job.cand.scorer.(serve.BatchScorer); ok && len(insts) > 1 {
		res, err := bs.ScoreBatch(context.Background(), insts)
		if err != nil || len(res) != len(insts) {
			p.met.shadowErrors.Inc()
			return
		}
		scores = res
	} else {
		scores = make([][]float64, len(insts))
		for i, inst := range insts {
			s, err := job.cand.scorer.Score(context.Background(), inst)
			if err != nil {
				p.met.shadowErrors.Inc()
				continue // s stays nil; compare skips it
			}
			scores[i] = s
		}
	}
	for i, inst := range insts {
		if scores[i] == nil {
			continue
		}
		p.compare(inst, primary[i], scores[i])
	}
}

// compare lands one instance's shadow comparison: candidate-vs-primary score
// divergence, top-k rank overlap and the candidate's ILD@k.
func (p *shadowPool) compare(inst *rerank.Instance, primary, scores []float64) {
	if len(scores) != len(inst.Items) {
		p.met.shadowErrors.Inc()
		return
	}
	var div float64
	finite := true
	for i := range scores {
		if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
			finite = false
			break
		}
		div += math.Abs(scores[i] - primary[i])
	}
	if !finite {
		p.met.shadowErrors.Inc()
		return
	}
	p.met.shadowDivergence.Observe(div / float64(len(scores)))

	k := p.k
	if k > len(inst.Items) {
		k = len(inst.Items)
	}
	primaryOrder := rerank.OrderByScores(inst.Items, primary)
	candOrder := rerank.OrderByScores(inst.Items, scores)
	inPrimary := make(map[int]bool, k)
	for _, id := range primaryOrder[:k] {
		inPrimary[id] = true
	}
	overlap := 0
	feats := make([][]float64, 0, k)
	for _, id := range candOrder[:k] {
		if inPrimary[id] {
			overlap++
		}
		feats = append(feats, inst.ItemFeat(id))
	}
	if k > 0 {
		p.met.shadowOverlap.Observe(float64(overlap) / float64(k))
	}
	p.met.shadowILD.Observe(metrics.ILDAtK(feats, k))
	p.met.shadowScored.Inc()
}
