package registry

import (
	"math"
	"sync"

	"repro/internal/metrics"
	"repro/internal/rerank"
)

// shadowJob is one request to score against the candidate off the request
// path: the instance the active model just served and its primary scores
// (aligned with inst.Items).
type shadowJob struct {
	cand    *version
	inst    *rerank.Instance
	primary []float64
}

// shadowPool scores shadow jobs on a fixed set of workers behind a bounded
// queue. Submission never blocks: when the queue is full the job is shed and
// counted. The choice to shed rather than queue is deliberate — shadow
// scoring is an observability signal, and an unbounded queue would convert a
// slow candidate into unbounded memory growth and stale divergence numbers.
// A shed sample only widens the confidence interval.
type shadowPool struct {
	jobs chan shadowJob
	wg   sync.WaitGroup
	met  *lifecycleMetrics
	k    int
	log  func(format string, args ...any)
}

func newShadowPool(workers, queue, k int, met *lifecycleMetrics, log func(string, ...any)) *shadowPool {
	p := &shadowPool{jobs: make(chan shadowJob, queue), met: met, k: k, log: log}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.score(job)
			}
		}()
	}
	return p
}

// submit enqueues a shadow job or sheds it; it never blocks the caller (the
// request handler).
func (p *shadowPool) submit(cand *version, inst *rerank.Instance, primary []float64) {
	select {
	case p.jobs <- shadowJob{cand: cand, inst: inst, primary: primary}:
	default:
		p.met.shadowShed.Inc()
	}
}

// close drains the queue and stops the workers.
func (p *shadowPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// score runs one shadow comparison: candidate scores on the same instance,
// then score divergence, top-k rank overlap and the candidate's ILD@k land
// in the divergence histograms. A panicking candidate is counted, never
// propagated — shadow mode must be unable to hurt the serving process.
func (p *shadowPool) score(job shadowJob) {
	defer func() {
		if r := recover(); r != nil {
			p.met.shadowErrors.Inc()
			p.log("registry: recovered shadow scoring panic on %s: %v", job.cand.label, r)
		}
	}()
	inst := job.inst
	cfg := job.cand.man.Config
	if cfg.UserDim != len(inst.UserFeat) || cfg.Topics != inst.M ||
		(len(inst.Items) > 0 && cfg.ItemDim != len(inst.ItemFeat(inst.Items[0]))) {
		// The instance was validated against the active model's geometry; a
		// candidate with a different one cannot score it. Canary traffic
		// still evaluates such a candidate (its requests validate against
		// its own manifest).
		p.met.shadowIncompatible.Inc()
		return
	}
	scores := job.cand.scorer.Scores(inst)
	if len(scores) != len(inst.Items) {
		p.met.shadowErrors.Inc()
		return
	}

	var div float64
	finite := true
	for i := range scores {
		if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
			finite = false
			break
		}
		div += math.Abs(scores[i] - job.primary[i])
	}
	if !finite {
		p.met.shadowErrors.Inc()
		return
	}
	p.met.shadowDivergence.Observe(div / float64(len(scores)))

	k := p.k
	if k > len(inst.Items) {
		k = len(inst.Items)
	}
	primaryOrder := rerank.OrderByScores(inst.Items, job.primary)
	candOrder := rerank.OrderByScores(inst.Items, scores)
	inPrimary := make(map[int]bool, k)
	for _, id := range primaryOrder[:k] {
		inPrimary[id] = true
	}
	overlap := 0
	feats := make([][]float64, 0, k)
	for _, id := range candOrder[:k] {
		if inPrimary[id] {
			overlap++
		}
		feats = append(feats, inst.ItemFeat(id))
	}
	if k > 0 {
		p.met.shadowOverlap.Observe(float64(overlap) / float64(k))
	}
	p.met.shadowILD.Observe(metrics.ILDAtK(feats, k))
	p.met.shadowScored.Inc()
}
