package registry

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// warmup replays the golden request set against a freshly loaded version
// before it may serve any traffic. Three things disqualify a version: a
// golden request its geometry cannot accept (the version could not serve
// production traffic), a non-finite score (corrupt or mis-trained weights),
// and a scoring pass over the warm-up latency budget (a model that is
// orders of magnitude too slow for the serving budget). Warm-up also doubles
// as cache/allocator warm-up, so the first live request does not pay
// first-touch costs.
func (r *Registry) warmup(label string, scorer serve.Scorer, man serve.Manifest) error {
	golden := r.cfg.Golden
	if golden == nil {
		golden = SyntheticGolden(man.Config, r.cfg.WarmupRequests, 8)
	}
	if len(golden) == 0 {
		return fmt.Errorf("empty golden request set")
	}
	for i := range golden {
		inst, err := serve.ToInstance(man.Config, &golden[i])
		if err != nil {
			return fmt.Errorf("golden request %d does not fit %s's geometry: %w", i, label, err)
		}
		start := time.Now()
		scores, err := scorer.Score(context.Background(), inst)
		elapsed := time.Since(start)
		r.met.warmupLatency.ObserveDuration(elapsed)
		if err != nil {
			return fmt.Errorf("golden request %d: %w", i, err)
		}
		if len(scores) != len(inst.Items) {
			return fmt.Errorf("golden request %d: %d scores for %d items", i, len(scores), len(inst.Items))
		}
		for j, s := range scores {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("golden request %d: non-finite score %v at item %d", i, s, j)
			}
		}
		if elapsed > r.cfg.WarmupBudget {
			return fmt.Errorf("golden request %d: scoring took %v, budget %v", i, elapsed, r.cfg.WarmupBudget)
		}
	}
	return nil
}

// SyntheticGolden builds a deterministic golden request set from a model
// geometry: n requests of listLen candidates with seeded pseudo-random
// features, coverage and behavior sequences. The same geometry always yields
// the same set, so warm-up results are reproducible across restarts. Use a
// committed production sample (Config.Golden) when one exists — synthetic
// inputs exercise the numerics and the latency, not the data distribution.
func SyntheticGolden(cfg core.Config, n, listLen int) []serve.RerankRequest {
	rng := rand.New(rand.NewSource(1))
	vec := func(dim int) []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		return v
	}
	reqs := make([]serve.RerankRequest, n)
	for i := range reqs {
		req := serve.RerankRequest{UserFeatures: vec(cfg.UserDim)}
		for j := 0; j < listLen; j++ {
			cover := make([]float64, cfg.Topics)
			cover[rng.Intn(cfg.Topics)] = 1
			req.Items = append(req.Items, serve.RerankItem{
				ID:        j + 1,
				Features:  vec(cfg.ItemDim),
				Cover:     cover,
				InitScore: rng.Float64(),
			})
		}
		req.TopicSequences = make([][]serve.SeqItemWire, cfg.Topics)
		for t := range req.TopicSequences {
			for s := rng.Intn(3); s > 0; s-- {
				req.TopicSequences[t] = append(req.TopicSequences[t], serve.SeqItemWire{Features: vec(cfg.ItemDim)})
			}
		}
		reqs[i] = req
	}
	return reqs
}
