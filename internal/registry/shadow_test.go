package registry

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rerank"
	"repro/internal/serve"
)

// shadowInstance builds an instance from the synthetic golden generator so
// shadow tests score realistic geometry without hand-rolling features.
func shadowInstance(t *testing.T) *rerank.Instance {
	t.Helper()
	req := SyntheticGolden(testGeometry(), 1, 6)[0]
	inst, err := serve.ToInstance(testGeometry(), &req)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func newShadowRegistry(t *testing.T, loader func(string) (serve.Scorer, serve.Manifest, error), mutate func(*Config)) *Registry {
	t.Helper()
	return newTestRegistry(t, []string{"v1", "v2"}, func(c *Config) {
		c.Shadow = true
		c.ShadowWorkers = 1
		c.ShadowQueue = 4
		c.ShadowK = 3
		if loader != nil {
			c.Loader = loader
		}
		if mutate != nil {
			mutate(c)
		}
	})
}

func TestShadowScoresCandidateOffPath(t *testing.T) {
	r := newShadowRegistry(t, nil, nil)
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	// A non-canary pick while a candidate is staged must carry a shadow hook;
	// canary picks must not (the candidate already scores those for real).
	pin := r.Pick(9_999) // CanaryPercent defaults to 0 here: never canary
	if pin.Canary {
		t.Fatal("unexpected canary pick")
	}
	if pin.ShadowBatch == nil {
		t.Fatal("non-canary pick has no shadow hook while a candidate is staged")
	}
	if pin.ShadowVersion != "v2" {
		t.Fatalf("shadow version %q, want v2", pin.ShadowVersion)
	}

	inst := shadowInstance(t)
	primary := stubScorer{name: "v1"}.Scores(inst)
	for i := 0; i < 8; i++ {
		pin.ShadowBatch([]*rerank.Instance{inst}, [][]float64{primary})
	}
	r.Close() // drains the pool
	scored := r.met.shadowScored.Value()
	shed := r.met.shadowShed.Value()
	if scored+shed != 8 {
		t.Fatalf("scored %d + shed %d != 8 submissions", scored, shed)
	}
	if scored == 0 {
		t.Fatal("every shadow job was shed")
	}
	if got := r.met.shadowDivergence.Snapshot().Count; got != scored {
		t.Fatalf("divergence observations %d, want %d", got, scored)
	}
	if got := r.met.shadowOverlap.Snapshot().Count; got != scored {
		t.Fatalf("overlap observations %d, want %d", got, scored)
	}
	if got := r.met.shadowILD.Snapshot().Count; got != scored {
		t.Fatalf("ILD observations %d, want %d", got, scored)
	}
	// The stub candidate scores identically to the primary: divergence must be
	// exactly zero and the top-k overlap total — a smoke check that the
	// comparison is aligned with inst.Items, not shifted.
	if sum := r.met.shadowDivergence.Snapshot().Sum; sum != 0 {
		t.Fatalf("identical models diverged by %v", sum)
	}
	if snap := r.met.shadowOverlap.Snapshot(); snap.Sum != float64(snap.Count) {
		t.Fatalf("identical models overlap %v/%d", snap.Sum, snap.Count)
	}
}

func TestShadowShedsWhenSaturated(t *testing.T) {
	block := make(chan struct{})
	r := newShadowRegistry(t, func(modelPath string) (serve.Scorer, serve.Manifest, error) {
		label := labelFromModelPath(modelPath)
		s := stubScorer{name: label}
		if label == "v2" {
			// The candidate's scorer passes warm-up (one free call) and then
			// parks the single worker until released.
			return &blockingScorer{stubScorer: s, gate: block, free: 1},
				serve.Manifest{Dataset: label, Config: testGeometry()}, nil
		}
		return s, serve.Manifest{Dataset: label, Config: testGeometry()}, nil
	}, func(c *Config) {
		c.WarmupRequests = 1
	})
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	pin := r.Pick(0)
	inst := shadowInstance(t)
	primary := stubScorer{name: "v1"}.Scores(inst)

	// One job parks the worker; the queue holds 4 more; everything past that
	// must be shed immediately, never queued or blocked.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			pin.ShadowBatch([]*rerank.Instance{inst}, [][]float64{primary})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shadow submission blocked the caller")
	}
	// At most 1 in-flight + 4 queued can be pending; the other ≥45 must have
	// been shed on the spot.
	if shed := r.met.shadowShed.Value(); shed < 45 {
		t.Fatalf("saturated pool shed only %d of 50 submissions", shed)
	}
	close(block)
	r.Close()
	if scored := r.met.shadowScored.Value(); scored == 0 {
		t.Fatal("released pool never scored the queued jobs")
	}
}

// blockingScorer passes its first `free` calls (warm-up) and then blocks on
// gate, pinning the shadow worker that picked it up.
type blockingScorer struct {
	stubScorer
	gate  chan struct{}
	free  int32
	calls atomic.Int32
}

func (b *blockingScorer) Scores(inst *rerank.Instance) []float64 {
	if b.calls.Add(1) > b.free {
		<-b.gate
	}
	return b.stubScorer.Scores(inst)
}

func (b *blockingScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return b.Scores(inst), nil
}

func TestShadowSkipsIncompatibleGeometry(t *testing.T) {
	other := testGeometry()
	other.UserDim = 9
	r := newShadowRegistry(t, func(modelPath string) (serve.Scorer, serve.Manifest, error) {
		label := labelFromModelPath(modelPath)
		man := serve.Manifest{Dataset: label, Config: testGeometry()}
		if label == "v2" {
			man.Config = other // candidate cannot score the active's instances
		}
		return stubScorer{name: label}, man, nil
	}, func(c *Config) {
		// Warm-up synthesizes from the candidate's own manifest, so the
		// incompatible candidate still loads cleanly.
		c.WarmupRequests = 1
	})
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	pin := r.Pick(0)
	inst := shadowInstance(t)
	pin.ShadowBatch([]*rerank.Instance{inst}, [][]float64{stubScorer{name: "v1"}.Scores(inst)})
	r.Close()
	if got := r.met.shadowIncompatible.Value(); got != 1 {
		t.Fatalf("incompatible counter %d, want 1", got)
	}
	if got := r.met.shadowScored.Value(); got != 0 {
		t.Fatalf("incompatible candidate scored %d jobs", got)
	}
}

func TestShadowRecoversPanickingCandidate(t *testing.T) {
	r := newShadowRegistry(t, func(modelPath string) (serve.Scorer, serve.Manifest, error) {
		label := labelFromModelPath(modelPath)
		if label == "v2" {
			return &panicScorer{free: 1}, serve.Manifest{Dataset: label, Config: testGeometry()}, nil
		}
		return stubScorer{name: label}, serve.Manifest{Dataset: label, Config: testGeometry()}, nil
	}, func(c *Config) {
		c.WarmupRequests = 1
	})
	for _, l := range []string{"v1", "v2"} {
		if err := r.Load(l); err != nil {
			t.Fatal(err)
		}
	}
	pin := r.Pick(0)
	inst := shadowInstance(t)
	primary := stubScorer{name: "v1"}.Scores(inst)
	pin.ShadowBatch([]*rerank.Instance{inst}, [][]float64{primary})
	r.Close()
	if got := r.met.shadowErrors.Value(); got != 1 {
		t.Fatalf("shadow errors %d, want 1 (recovered panic)", got)
	}
}

// panicScorer survives warm-up (its first `free` calls succeed) and then
// panics — the shape of a model that breaks only on live traffic.
type panicScorer struct {
	free  int32
	calls atomic.Int32
}

func (p *panicScorer) Name() string { return "panic" }
func (p *panicScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	if p.calls.Add(1) > p.free {
		panic("candidate model bug")
	}
	return make([]float64, len(inst.Items)), nil
}
