package registry

import (
	"container/list"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
)

// MultiConfig parameterizes a multi-tenant model store. Root is required;
// every other field's zero value falls back to the listed default.
type MultiConfig struct {
	// Root is the tenant store directory: one subdirectory per tenant, each
	// an ordinary single-tenant version store (the layout rapidtrain's
	// -store flag publishes into, one level deeper).
	Root string
	// MaxResidentBytes bounds the estimated parameter bytes of resident
	// tenants; resolving a tenant past the budget evicts least-recently-used
	// tenants first. 0 means no byte budget.
	MaxResidentBytes int64
	// MaxResident bounds the number of resident tenants regardless of size.
	// 0 means no count bound.
	MaxResident int
	// Registry receives the tenant residency metrics (rapid_tenant_resident,
	// rapid_tenant_resident_bytes, rapid_tenant_loads_total,
	// rapid_tenant_evictions_total). Pass the serving registry so /metrics
	// carries them; nil means a private one.
	Registry *obs.Registry
	// Base is the template for each tenant's single-tenant registry. Root,
	// Registry and Log are overridden per tenant: every tenant registry gets
	// a private metrics registry so two tenants publishing the same version
	// label cannot merge their per-version series.
	Base Config
	// Sizer estimates a loaded scorer's resident bytes for the LRU budget.
	// nil charges 8 bytes per model parameter (and a small constant for
	// weightless diversifier versions).
	Sizer func(serve.Scorer) int64
	// Log receives operational messages; nil uses the Base config's logger
	// defaulting.
	Log func(format string, args ...any)
}

// tenantMetrics is the residency metric set of a Multi. The engine's own
// rapid_tenant_requests_total / rapid_tenant_shed_total families count
// traffic; these count what that traffic costs in resident model memory.
type tenantMetrics struct {
	resident      *obs.Gauge
	residentBytes *obs.Gauge
	loads         *obs.Counter
	evictions     *obs.Counter
}

func newTenantMetrics(r *obs.Registry) *tenantMetrics {
	return &tenantMetrics{
		resident: r.Gauge("rapid_tenant_resident",
			"Tenant model registries currently resident in memory."),
		residentBytes: r.Gauge("rapid_tenant_resident_bytes",
			"Estimated parameter bytes of all resident tenant models."),
		loads: r.Counter("rapid_tenant_loads_total",
			"Tenant registries opened and activated (first request or reload after eviction)."),
		evictions: r.Counter("rapid_tenant_evictions_total",
			"Tenant registries evicted by the residency budget (LRU)."),
	}
}

// resident is one loaded tenant. Eviction closes the registry but cannot
// invalidate requests already holding one of its pins: pins are immutable
// snapshots, so an in-flight request keeps scoring against the model it
// resolved even while the tenant is being closed underneath.
type resident struct {
	name  string
	reg   *Registry
	bytes int64
	elem  *list.Element
}

// Multi implements the engine's TenantSource over a directory of per-tenant
// version stores: Root/<tenant>/<version>/. Tenants load lazily on first
// resolution (open the sub-registry, activate its newest version, warm it
// up) and stay resident until the LRU budget pushes them out. Resolution of
// a resident tenant is a map lookup under a mutex; only a cold tenant pays
// the load, and cold loads serialize — one tenant warming up cannot race
// another into a budget the eviction loop has not settled yet.
type Multi struct {
	cfg MultiConfig
	met *tenantMetrics

	mu    sync.Mutex
	res   map[string]*resident
	lru   *list.List // front = least recently used
	bytes int64
}

// NewMulti opens a multi-tenant store over cfg.Root. No tenant is loaded
// until first resolved.
func NewMulti(cfg MultiConfig) (*Multi, error) {
	if cfg.Root == "" {
		return nil, fmt.Errorf("registry: MultiConfig.Root is required")
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create tenant root: %w", err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Sizer == nil {
		cfg.Sizer = scorerBytes
	}
	return &Multi{
		cfg: cfg,
		met: newTenantMetrics(reg),
		res: make(map[string]*resident),
		lru: list.New(),
	}, nil
}

// scorerBytes is the default residency estimator: 8 bytes per parameter for
// neural models, a nominal constant for weightless diversifier adapters.
func scorerBytes(sc serve.Scorer) int64 {
	if m, ok := sc.(interface{ ParamSet() *nn.ParamSet }); ok {
		return int64(m.ParamSet().NumParams()) * 8
	}
	return 4 << 10
}

// Tenant implements the engine's TenantSource: it resolves name to that
// tenant's registry, loading it on first use. Unknown or invalid names
// error; the engine converts any failure into its unknown-tenant shape.
func (m *Multi) Tenant(name string) (serve.Provider, error) {
	// Tenant names are path components chosen by request bodies — the same
	// trust boundary as version labels, so the same validation.
	if err := ValidLabel(name); err != nil {
		return nil, fmt.Errorf("unknown tenant %q: %w", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rt, ok := m.res[name]; ok {
		m.lru.MoveToBack(rt.elem)
		return rt.reg, nil
	}
	rt, err := m.load(name)
	if err != nil {
		return nil, err
	}
	m.evictOver(rt)
	return rt.reg, nil
}

// load opens and activates one tenant under m.mu.
func (m *Multi) load(name string) (*resident, error) {
	dir := filepath.Join(m.cfg.Root, name)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("unknown tenant %q: no store at %s", name, dir)
	}
	cfg := m.cfg.Base
	cfg.Root = dir
	cfg.Registry = obs.NewRegistry() // private: see MultiConfig.Base
	base := m.cfg.Log
	if base == nil {
		base = m.cfg.Base.Log
	}
	if base == nil {
		base = log.Printf
	}
	cfg.Log = func(format string, args ...any) {
		base("tenant %s: "+format, append([]any{name}, args...)...)
	}
	reg, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", name, err)
	}
	label, err := reg.ActivateLatest()
	if err != nil {
		reg.Close()
		return nil, fmt.Errorf("tenant %q: activate: %w", name, err)
	}
	rt := &resident{name: name, reg: reg, bytes: m.cfg.Sizer(reg.Active().Scorer)}
	rt.elem = m.lru.PushBack(rt)
	m.res[name] = rt
	m.bytes += rt.bytes
	m.met.loads.Inc()
	m.publishGauges()
	cfg.Log("resident (version %s, ~%d bytes)", label, rt.bytes)
	return rt, nil
}

// evictOver closes least-recently-used tenants until the residency budget
// holds again. keep — the tenant that just loaded — is never evicted even
// if it alone exceeds the byte budget: a tenant too large to coexist with
// others must still be servable on its own.
func (m *Multi) evictOver(keep *resident) {
	over := func() bool {
		if m.cfg.MaxResident > 0 && len(m.res) > m.cfg.MaxResident {
			return true
		}
		return m.cfg.MaxResidentBytes > 0 && m.bytes > m.cfg.MaxResidentBytes
	}
	for over() {
		front := m.lru.Front()
		if front == nil {
			return
		}
		victim := front.Value.(*resident)
		if victim == keep {
			return
		}
		m.evict(victim)
	}
}

// evict removes one resident tenant under m.mu.
func (m *Multi) evict(rt *resident) {
	m.lru.Remove(rt.elem)
	delete(m.res, rt.name)
	m.bytes -= rt.bytes
	rt.reg.Close()
	m.met.evictions.Inc()
	m.publishGauges()
}

func (m *Multi) publishGauges() {
	m.met.resident.Set(float64(len(m.res)))
	m.met.residentBytes.Set(float64(m.bytes))
}

// Resident reports the currently resident tenant count and estimated bytes.
func (m *Multi) Resident() (tenants int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.res), m.bytes
}

// Close evicts every resident tenant. Calling Tenant after Close reloads —
// a Multi has no terminal state of its own; Close exists so a shutting-down
// process can drain tenant shadow pools deterministically.
func (m *Multi) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.lru.Front() != nil {
		m.evict(m.lru.Front().Value.(*resident))
	}
}
