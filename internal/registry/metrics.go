package registry

import "repro/internal/obs"

// Bounds for the shadow divergence histograms. Overlap is a fraction in
// [0, 1]; score divergence and ILD live on the models' score/feature scales,
// so the buckets span decades around 1.
var (
	fractionBuckets   = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	divergenceBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
	ildBuckets        = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
)

// lifecycleMetrics is the model lifecycle metric set: per-version traffic
// series (labeled by version so canary and active are comparable on one
// dashboard), lifecycle transition counters, warm-up outcomes and the
// shadow-mode divergence histograms.
type lifecycleMetrics struct {
	requests *obs.CounterVec   // per-version requests
	degraded *obs.CounterVec   // per-version degraded (non-ok) outcomes
	latency  *obs.HistogramVec // per-version end-to-end latency

	loads          *obs.Counter
	promotions     *obs.Counter
	rollbacks      *obs.CounterVec // reason: manual | auto
	warmupFailures *obs.Counter
	warmupLatency  *obs.Histogram

	shadowScored       *obs.Counter
	shadowShed         *obs.Counter
	shadowErrors       *obs.Counter
	shadowIncompatible *obs.Counter
	shadowDivergence   *obs.Histogram
	shadowOverlap      *obs.Histogram
	shadowILD          *obs.Histogram
}

func newLifecycleMetrics(r *obs.Registry) *lifecycleMetrics {
	return &lifecycleMetrics{
		requests: r.CounterVec("rapid_model_requests_total",
			"Requests served, by model version (canary and active both count here).", "version"),
		degraded: r.CounterVec("rapid_model_degraded_total",
			"Degraded (non-ok) request outcomes, by model version — the canary auto-rollback signal.", "version"),
		latency: r.HistogramVec("rapid_model_request_latency_seconds",
			"End-to-end request latency, by model version.", "version", nil),
		loads: r.Counter("rapid_model_loads_total",
			"Model versions loaded and warm-up validated (admin load or startup activation)."),
		promotions: r.Counter("rapid_model_promotions_total",
			"Candidate versions promoted to active."),
		rollbacks: r.CounterVec("rapid_model_rollbacks_total",
			"Rollbacks by trigger: manual (admin API) or auto (canary degrade-rate excess).", "reason"),
		warmupFailures: r.Counter("rapid_model_warmup_failures_total",
			"Version loads rejected by warm-up validation (non-finite scores, geometry mismatch or latency budget)."),
		warmupLatency: r.Histogram("rapid_model_warmup_latency_seconds",
			"Per-request scoring latency during warm-up golden replay.", nil),
		shadowScored: r.Counter("rapid_shadow_scored_total",
			"Requests shadow-scored by the candidate off the request path."),
		shadowShed: r.Counter("rapid_shadow_shed_total",
			"Shadow scoring requests shed because the bounded queue was full."),
		shadowErrors: r.Counter("rapid_shadow_errors_total",
			"Shadow scoring passes that panicked or returned malformed scores."),
		shadowIncompatible: r.Counter("rapid_shadow_incompatible_total",
			"Shadow requests skipped because the candidate's geometry cannot score the active model's instance."),
		shadowDivergence: r.Histogram("rapid_shadow_score_divergence",
			"Mean absolute per-item score difference between candidate and active.", divergenceBuckets),
		shadowOverlap: r.Histogram("rapid_shadow_rank_overlap_at_k",
			"Fraction of the active model's top-k items also in the candidate's top-k.", fractionBuckets),
		shadowILD: r.Histogram("rapid_shadow_ild_at_k",
			"Intra-list distance (ILD@k) of the candidate's top-k — the online diversity signal vs the active model's ranking.", ildBuckets),
	}
}
