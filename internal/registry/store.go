// Package registry is the model lifecycle subsystem: a versioned on-disk
// model store, an in-memory registry that hot-swaps loaded versions behind
// one atomic pointer, and the promotion pipeline that takes a version from
// "published by rapidtrain" to "serving live traffic" — load, warm-up
// validation against a golden request set, canary evaluation on a
// deterministic traffic fraction, then promote or (auto-)rollback. A shadow
// mode scores the candidate asynchronously off the request path and records
// its divergence from the active model without affecting responses.
//
// The registry implements serve.Provider, so the serving layer stays a pure
// data plane: it pins one coherent (model, manifest, version) triple per
// request from a single atomic snapshot and never blocks on lifecycle
// operations. Lifecycle mutations (load, promote, rollback) serialize on a
// mutex and publish a fresh immutable state value; scoring only ever loads
// the pointer.
package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/nn"
	"repro/internal/serve"
)

// File names inside one version directory. A version is committed iff both
// files exist; the directory itself appears atomically (staging + rename),
// so a concurrent scan never observes a half-written version.
const (
	ModelFile    = "model.gob"
	ManifestFile = "model.json"
)

// ModelPath is the weights path of one version inside a store root.
func ModelPath(root, version string) string {
	return filepath.Join(root, version, ModelFile)
}

// ValidLabel rejects version labels that could escape the store root or
// collide with staging directories. Labels are path components chosen by
// operators and admin API callers — they must never be trusted as paths.
func ValidLabel(label string) error {
	switch {
	case label == "":
		return fmt.Errorf("empty version label")
	case strings.HasPrefix(label, "."):
		return fmt.Errorf("version label %q may not start with '.'", label)
	case strings.ContainsAny(label, `/\`):
		return fmt.Errorf("version label %q may not contain path separators", label)
	}
	return nil
}

// Publish writes a trained model and its manifest into a fresh version
// directory under root and commits it atomically: the files are written and
// fsynced inside a hidden staging directory, the staging directory is
// fsynced, renamed to its final name, and the root directory is fsynced so
// the rename itself survives a crash. A concurrently scanning or loading
// server either sees the complete version or nothing. An empty label
// generates a UTC-timestamped one (v20060102T150405, suffixed on collision).
func Publish(root, label string, ps *nn.ParamSet, man serve.Manifest) (string, error) {
	return publishStaged(root, label, man, func(staging string) error {
		return ps.SaveFileAtomic(filepath.Join(staging, ModelFile))
	})
}

// PublishDiversifier commits a weightless classic-diversifier version: the
// manifest must name a registered diversifier (serve.LoadScorer then builds
// the diversify adapter instead of reading weights), and ModelFile is written
// as a placeholder so the commit protocol — and every scanner that treats
// "both files exist" as the commit marker — stays identical to a neural
// version. The manifest's Config still describes the surface geometry so
// warm-up validation and request shaping work unchanged.
func PublishDiversifier(root, label string, man serve.Manifest) (string, error) {
	if man.Diversifier == "" {
		return "", fmt.Errorf("registry: manifest names no diversifier")
	}
	return publishStaged(root, label, man, func(staging string) error {
		placeholder := []byte("diversifier:" + man.Diversifier + "\n")
		return writeFileSync(filepath.Join(staging, ModelFile), placeholder)
	})
}

// publishStaged is the shared atomic commit discipline: write the version's
// artifacts inside a hidden staging directory, fsync it, rename it to the
// final label, fsync the root so the rename survives a crash.
func publishStaged(root, label string, man serve.Manifest, writeModel func(staging string) error) (string, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", fmt.Errorf("registry: create root: %w", err)
	}
	if label == "" {
		label = nextLabel(root)
	} else if err := ValidLabel(label); err != nil {
		return "", fmt.Errorf("registry: %w", err)
	}
	final := filepath.Join(root, label)
	if _, err := os.Stat(final); err == nil {
		return "", fmt.Errorf("registry: version %s already exists in %s", label, root)
	}

	staging, err := os.MkdirTemp(root, ".staging-*")
	if err != nil {
		return "", fmt.Errorf("registry: staging dir: %w", err)
	}
	defer os.RemoveAll(staging) // no-op after the rename succeeds

	if err := writeModel(staging); err != nil {
		return "", err
	}
	if err := serve.WriteManifestFileAtomic(filepath.Join(staging, ManifestFile), man); err != nil {
		return "", err
	}
	if err := syncDir(staging); err != nil {
		return "", err
	}
	if err := os.Rename(staging, final); err != nil {
		return "", fmt.Errorf("registry: commit version %s: %w", label, err)
	}
	if err := syncDir(root); err != nil {
		return "", err
	}
	return label, nil
}

// writeFileSync writes a small artifact and fsyncs it; inside a staging
// directory the usual temp-and-rename dance is unnecessary (the whole
// directory renames atomically), but durability still matters.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("registry: write %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("registry: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("registry: sync %s: %w", path, err)
	}
	return nil
}

// nextLabel generates a fresh timestamped label, suffixing a counter when
// two publishes land within the same second.
func nextLabel(root string) string {
	base := "v" + time.Now().UTC().Format("20060102T150405")
	label := base
	for i := 2; ; i++ {
		if _, err := os.Stat(filepath.Join(root, label)); os.IsNotExist(err) {
			return label
		}
		label = fmt.Sprintf("%s-%d", base, i)
	}
}

// Scan lists the committed versions under root, sorted lexicographically
// (timestamped labels therefore sort oldest-first). Hidden entries — which
// include in-flight staging directories — and directories missing either
// artifact are skipped: they are not versions yet.
func Scan(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("registry: scan %s: %w", root, err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, e.Name(), ModelFile)); err != nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, e.Name(), ManifestFile)); err != nil {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// syncDir fsyncs a directory so a preceding rename or file creation in it is
// durable — without it a crash can lose a "successfully committed" version.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("registry: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("registry: sync dir %s: %w", dir, err)
	}
	return nil
}
