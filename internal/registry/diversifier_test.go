package registry

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// TestPublishDiversifierLifecycle drives a weightless diversifier version
// through the real production path: PublishDiversifier commits it beside a
// trained model version, serve.LoadScorer (the default Loader) builds the
// diversify adapter from the manifest, warm-up validates it against the
// synthesized golden set, and the registry stages it as a canary candidate
// next to the active neural model.
func TestPublishDiversifierLifecycle(t *testing.T) {
	root := t.TempDir()
	cfg := testGeometry()
	m := core.New(cfg)

	if _, err := Publish(root, "v20250101T000000", m.ParamSet(),
		serve.Manifest{Dataset: "test", Lambda: 0.9, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	divMan := serve.Manifest{Dataset: "test", Config: cfg,
		Diversifier: "window", DiversifierLambda: 0.5}
	label, err := PublishDiversifier(root, "div-window", divMan)
	if err != nil {
		t.Fatal(err)
	}
	if label != "div-window" {
		t.Fatalf("label %q", label)
	}
	// A manifest naming no diversifier must be rejected outright.
	if _, err := PublishDiversifier(root, "div-bad", serve.Manifest{Config: cfg}); err == nil {
		t.Fatal("PublishDiversifier accepted a manifest with no diversifier")
	}

	// "div-*" sorts before "v*": startup auto-activation must still pick
	// the trained model, not the heuristic.
	r, err := New(Config{Root: root, Log: t.Logf, CanaryPercent: 50})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	active, err := r.ActivateLatest()
	if err != nil {
		t.Fatal(err)
	}
	if active != "v20250101T000000" {
		t.Fatalf("ActivateLatest picked %q, want the trained version", active)
	}

	// Staging the diversifier version exercises the full load path:
	// LoadScorer manifest branch + warm-up on the synthesized golden set.
	if err := r.Load("div-window"); err != nil {
		t.Fatal(err)
	}
	vs, err := r.Versions()
	if err != nil {
		t.Fatal(err)
	}
	var state string
	for _, v := range vs {
		if v.Version == "div-window" {
			state = v.State
		}
	}
	if state != "candidate" {
		t.Fatalf("div-window state %q after load, want candidate", state)
	}

	// The staged candidate must actually be the diversify adapter, scoring
	// rank permutations through the serve.Scorer seam.
	var pinned serve.Pinned
	for key := uint64(0); key < 64; key++ {
		if p := r.Pick(key); p.Version == "div-window" {
			pinned = p
			break
		}
	}
	if pinned.Scorer == nil {
		t.Fatal("no routing key pinned the div-window candidate at 50% canary")
	}
	if !strings.HasPrefix(pinned.Scorer.Name(), "div-") {
		t.Fatalf("candidate scorer %q is not a diversifier adapter", pinned.Scorer.Name())
	}
	req := SyntheticGolden(cfg, 1, 8)[0]
	inst, err := serve.ToInstance(cfg, &req)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := pinned.Scorer.Score(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != inst.L() {
		t.Fatalf("diversifier candidate returned %d scores for %d items", len(scores), inst.L())
	}
}
