package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// newTestMulti builds a Multi over a temp root with the stub loader: each
// tenant directory gets one fake version, and every loaded scorer is sized
// at a fixed 100 bytes so the byte budget is exact arithmetic.
func newTestMulti(t *testing.T, tenants []string, mutate func(*MultiConfig)) (*Multi, *obs.Registry) {
	t.Helper()
	root := t.TempDir()
	for _, name := range tenants {
		fakeVersionDir(t, filepath.Join(root, name), "v1")
	}
	reg := obs.NewRegistry()
	cfg := MultiConfig{
		Root:     root,
		Registry: reg,
		Base: Config{
			Loader: func(modelPath string) (serve.Scorer, serve.Manifest, error) {
				label := labelFromModelPath(modelPath)
				return stubScorer{name: label},
					serve.Manifest{Dataset: label, Config: testGeometry()}, nil
			},
		},
		Sizer: func(serve.Scorer) int64 { return 100 },
		Log:   t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, reg
}

func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, snap := range reg.Snapshot() {
		if snap.Name == name {
			return snap.Value
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestMultiTenantResidencyAndLRU is the multi-tenancy acceptance test:
// three tenants stay resident together under the byte budget, a fourth
// evicts the least-recently-used one (recency refreshed by resolution, not
// insertion order), and the evicted tenant reloads transparently on its
// next request.
func TestMultiTenantResidencyAndLRU(t *testing.T) {
	m, reg := newTestMulti(t, []string{"acme", "beta", "corp", "dyne"},
		func(cfg *MultiConfig) { cfg.MaxResidentBytes = 300 }) // room for exactly 3

	// Three distinct tenants resolve and stay resident concurrently.
	for _, name := range []string{"acme", "beta", "corp"} {
		p, err := m.Tenant(name)
		if err != nil {
			t.Fatalf("tenant %s: %v", name, err)
		}
		if pin := p.Active(); pin.Version != "v1" || pin.Scorer == nil {
			t.Fatalf("tenant %s activated %+v", name, pin)
		}
	}
	if n, b := m.Resident(); n != 3 || b != 300 {
		t.Fatalf("resident %d tenants / %d bytes, want 3 / 300", n, b)
	}
	if got := counterValue(t, reg, "rapid_tenant_loads_total"); got != 3 {
		t.Fatalf("loads_total = %v, want 3", got)
	}

	// A resident tenant resolves without reloading, and each tenant serves
	// its own store (the stub scorer names its version path's label — the
	// manifests must differ per tenant only by store, not leak across).
	pa, err := m.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := m.Tenant("beta")
	if pa == pb {
		t.Fatal("distinct tenants resolved to the same provider")
	}
	if got := counterValue(t, reg, "rapid_tenant_loads_total"); got != 3 {
		t.Fatalf("resident re-resolution reloaded: loads_total = %v", got)
	}

	// Touch acme and beta so corp is now the LRU victim; dyne's load must
	// evict corp — and only corp.
	if _, err := m.Tenant("acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tenant("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tenant("dyne"); err != nil {
		t.Fatal(err)
	}
	if n, b := m.Resident(); n != 3 || b != 300 {
		t.Fatalf("after eviction: %d tenants / %d bytes, want 3 / 300", n, b)
	}
	if got := counterValue(t, reg, "rapid_tenant_evictions_total"); got != 1 {
		t.Fatalf("evictions_total = %v, want 1", got)
	}

	// The evicted tenant reloads on demand (a fresh load, not a cache hit).
	if _, err := m.Tenant("corp"); err != nil {
		t.Fatalf("evicted tenant did not reload: %v", err)
	}
	if got := counterValue(t, reg, "rapid_tenant_loads_total"); got != 5 {
		t.Fatalf("loads_total = %v, want 5 (4 cold + 1 reload)", got)
	}
	if got := counterValue(t, reg, "rapid_tenant_evictions_total"); got != 2 {
		t.Fatalf("evictions_total = %v, want 2", got)
	}
}

// TestMultiTenantCountBound: MaxResident bounds residency by count when no
// byte budget is set.
func TestMultiTenantCountBound(t *testing.T) {
	m, _ := newTestMulti(t, []string{"a", "b", "c"},
		func(cfg *MultiConfig) { cfg.MaxResident = 2 })
	for _, name := range []string{"a", "b", "c"} {
		if _, err := m.Tenant(name); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := m.Resident(); n != 2 {
		t.Fatalf("resident %d tenants, want 2", n)
	}
}

// TestMultiTenantUnknownAndInvalid: absent stores and path-escaping names
// both fail without touching the filesystem outside Root.
func TestMultiTenantUnknownAndInvalid(t *testing.T) {
	m, _ := newTestMulti(t, []string{"real"}, nil)
	for _, name := range []string{"ghost", "../real", "a/b", ".hidden", ""} {
		if _, err := m.Tenant(name); err == nil {
			t.Fatalf("tenant %q resolved", name)
		} else if !strings.Contains(err.Error(), "unknown tenant") {
			t.Fatalf("tenant %q error %v does not say unknown tenant", name, err)
		}
	}
	if n, _ := m.Resident(); n != 0 {
		t.Fatalf("failed resolutions left %d tenants resident", n)
	}
}

// TestMultiTenantActivationFailureNotResident: a tenant directory with no
// committed version fails to activate and must not leak residency.
func TestMultiTenantActivationFailureNotResident(t *testing.T) {
	m, _ := newTestMulti(t, []string{"good"}, nil)
	if err := os.MkdirAll(filepath.Join(m.cfg.Root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tenant("empty"); err == nil {
		t.Fatal("version-less tenant activated")
	}
	if _, err := m.Tenant("good"); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Resident(); n != 1 {
		t.Fatalf("resident %d tenants, want 1", n)
	}
}

// TestMultiOversizedTenantStaysServable: one tenant bigger than the whole
// byte budget still loads (evicting everything else) — the budget bounds
// coexistence, not serviceability.
func TestMultiOversizedTenantStaysServable(t *testing.T) {
	m, _ := newTestMulti(t, []string{"small"}, func(cfg *MultiConfig) {
		cfg.MaxResidentBytes = 150
		// The stub scorer's name is its version label; the huge tenant's
		// store publishes "vbig" so the sizer can tell them apart.
		cfg.Sizer = func(sc serve.Scorer) int64 {
			if sc.Name() == "vbig" {
				return 1000
			}
			return 100
		}
	})
	fakeVersionDir(t, filepath.Join(m.cfg.Root, "huge"), "vbig")
	if _, err := m.Tenant("small"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tenant("huge"); err != nil {
		t.Fatalf("over-budget tenant unservable: %v", err)
	}
	if n, b := m.Resident(); n != 1 || b != 1000 {
		t.Fatalf("resident %d / %d bytes, want the oversized tenant alone", n, b)
	}
}
