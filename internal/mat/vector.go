package mat

import (
	"math"
	"sort"
)

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddVec returns a + b element-wise.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// ScaleVec returns s·a.
func ScaleVec(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = s * v
	}
	return out
}

// NormVec returns the Euclidean norm of a.
func NormVec(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// SumVec returns the sum of the entries of a.
func SumVec(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Softmax returns the softmax of a, computed stably.
func Softmax(a []float64) []float64 {
	out := make([]float64, len(a))
	if len(a) == 0 {
		return out
	}
	mx := a[0]
	for _, v := range a[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range a {
		e := math.Exp(v - mx)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Normalize returns a scaled so its entries sum to 1. If the sum is zero it
// returns the uniform distribution.
func Normalize(a []float64) []float64 {
	s := SumVec(a)
	out := make([]float64, len(a))
	if s == 0 {
		if len(a) > 0 {
			u := 1 / float64(len(a))
			for i := range out {
				out[i] = u
			}
		}
		return out
	}
	for i, v := range a {
		out[i] = v / s
	}
	return out
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero entries contribute zero.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// ArgSortDesc returns the indices that sort a in descending order.
// Ties are broken by ascending index so the result is deterministic.
func ArgSortDesc(a []float64) []int {
	idx := make([]int, len(a))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return a[idx[x]] > a[idx[y]] })
	return idx
}

// TopK returns the indices of the k largest entries of a, in descending
// order of value. If k exceeds len(a) the full argsort is returned.
func TopK(a []float64, k int) []int {
	idx := ArgSortDesc(a)
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// Sigmoid returns 1/(1+e^{-x}) computed without overflow for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
