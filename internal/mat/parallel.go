// Goroutine-parallel panel partitioning for the GEMM kernels.
//
// The three hot kernels (MatMulInto, AddMatMulABT, AddMatMulATB) compute
// every output element with a private accumulation chain: no element's value
// depends on any other output element, and the floating-point order of each
// chain is fixed by the kernel's loop structure alone. Partitioning the
// output into contiguous panels and computing panels on different goroutines
// therefore changes nothing about the arithmetic — the parallel result is
// bitwise identical to the serial one for any worker count, which is what
// lets the parity tests compare with == instead of a tolerance.
//
// Dispatch policy: a kernel call is parallelized only when (a) the package
// worker knob is above one, (b) the call is at least parCutoff multiply-adds
// — below that the LSTM-step GEMMs that dominate training would pay more in
// scheduling than they save in arithmetic — and (c) the partitioned axis is
// wide enough to give every worker at least minPanel rows/columns. Panels
// run on a small persistent worker pool (started once, sized to GOMAXPROCS)
// so steady-state parallel GEMMs reuse pooled workers instead of spawning
// goroutines; when the pool's queue is momentarily full the submitting call
// spawns a fallback goroutine rather than blocking behind unrelated work.
package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// gemmWorkers is the package-level worker knob; 0 or 1 means serial.
var gemmWorkers atomic.Int32

// parCutoff is the minimum multiply-add count for parallel dispatch. The
// value keeps every per-step recurrence GEMM in training and single-request
// serving (≲ 64×64×16 ≈ 64K madds) on the serial fast path while the large
// stacked-head and benchmark shapes (≥ 128³ ≈ 2M madds) parallelize. It is
// a var so the parity tests can force the parallel path on tiny shapes.
var parCutoff = 96 * 1024

// minPanel is the smallest panel (output rows or columns) worth handing to
// a worker; narrower panels only add synchronization.
var minPanel = 8

// SetWorkers sets the number of goroutines GEMM calls above the size cutoff
// may use. n <= 0 selects GOMAXPROCS. 1 (the package default) keeps every
// call serial: library users opt in, because parallel GEMM competes for
// cores with request- and trainer-level parallelism and only the binary
// knows which layer should own them. Safe to call at any time, including
// concurrently with running kernels (in-flight calls finish under the
// worker count they started with).
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	const maxWorkers = 256
	if n > maxWorkers {
		n = maxWorkers
	}
	gemmWorkers.Store(int32(n))
	if n > 1 {
		startPanelPool()
	}
}

// Workers reports the current GEMM worker count (≥ 1).
func Workers() int {
	if w := gemmWorkers.Load(); w > 1 {
		return int(w)
	}
	return 1
}

// panelTask is one output panel handed to the worker pool.
type panelTask struct {
	run    func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	panelPoolOnce sync.Once
	panelCh       chan panelTask
)

// startPanelPool lazily starts the persistent panel workers. The pool is
// sized to GOMAXPROCS regardless of the knob: the knob bounds how many
// panels one call fans out, the pool bounds total GEMM parallelism in the
// process.
func startPanelPool() {
	panelPoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		panelCh = make(chan panelTask, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range panelCh {
					t.run(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// parFor splits [0, n) into at most nw contiguous panels of at least
// minPanel each and runs them concurrently, executing the first panel on
// the calling goroutine. It reports false — having run nothing — when the
// split would leave fewer than two panels; the caller then runs serial.
// run must only write state owned by its [lo, hi) panel.
func parFor(n, nw int, run func(lo, hi int)) bool {
	if most := n / minPanel; nw > most {
		nw = most
	}
	if nw < 2 {
		return false
	}
	startPanelPool()
	chunk := (n + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		t := panelTask{run: run, lo: lo, hi: hi, wg: &wg}
		select {
		case panelCh <- t:
		default:
			// Pool momentarily saturated (e.g. concurrent batch scorers):
			// spawn rather than queue behind unrelated panels.
			go func() {
				t.run(t.lo, t.hi)
				t.wg.Done()
			}()
		}
	}
	run(0, chunk)
	wg.Wait()
	return true
}
