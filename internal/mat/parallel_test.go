package mat

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// forceParallel lowers the size cutoff and minimum panel to zero/one and
// sets the worker knob so every kernel call in the test body takes the
// parallel dispatch path, then restores the package state. Tests using it
// must not run in parallel with each other (the knob and cutoff are package
// globals).
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	oldCutoff, oldPanel := parCutoff, minPanel
	parCutoff, minPanel = 0, 1
	SetWorkers(workers)
	t.Cleanup(func() {
		parCutoff, minPanel = oldCutoff, oldPanel
		SetWorkers(1)
	})
}

// parallelShapes are the panel-partitioning edge cases: single row (column
// split), single column, tall-skinny, wide, and non-multiples of any block
// or worker count.
var parallelShapes = [][3]int{
	{1, 1, 1}, {1, 7, 33}, {1, 64, 128}, // 1×N: row axis unsplittable
	{33, 1, 1}, {128, 8, 1}, // N×1: column axis unsplittable
	{257, 5, 3}, {1000, 8, 8}, // tall-skinny
	{3, 5, 257},                            // short-wide
	{7, 13, 3}, {16, 17, 16}, {31, 33, 29}, // odd, non-multiple-of-block
	{64, 64, 64},
}

// TestParallelMatMulBitwise: the parallel MatMulInto must be bitwise equal
// to the serial kernel for every worker count and shape — the panel split
// never changes any element's accumulation order.
func TestParallelMatMulBitwise(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 7, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			forceParallel(t, workers)
			rng := rand.New(rand.NewSource(21))
			for _, dims := range parallelShapes {
				r, k, c := dims[0], dims[1], dims[2]
				a := RandNormal(r, k, 0, 1, rng)
				b := RandNormal(k, c, 0, 1, rng)
				want := New(r, c)
				matMulPanel(want, a, b, 0, r, 0, c) // serial reference
				got := New(r, c)
				MatMulInto(got, a, b)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%v: element %d differs: %g vs %g", dims, i, got.Data[i], want.Data[i])
					}
				}
				if naive := naiveMatMul(a, b); !got.EqualApprox(naive, 1e-9) {
					t.Fatalf("%v: diverges from naive reference", dims)
				}
			}
		})
	}
}

// TestParallelAddMatMulABTBitwise covers the fused-transpose accumulate
// kernel across worker counts, including its column-split path (1×N).
func TestParallelAddMatMulABTBitwise(t *testing.T) {
	for _, workers := range []int{2, 3, 5, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			forceParallel(t, workers)
			rng := rand.New(rand.NewSource(22))
			for _, dims := range [][3]int{{1, 6, 33}, {33, 6, 1}, {257, 5, 3}, {3, 5, 257}, {31, 33, 29}, {64, 64, 64}} {
				r, c, k := dims[0], dims[1], dims[2]
				a := RandNormal(r, c, 0, 1, rng)
				b := RandNormal(k, c, 0, 1, rng)
				seed := RandNormal(r, k, 0, 1, rng) // kernel must accumulate into it
				want := seed.Clone()
				addMatMulABTPanel(want, a, b, 0, r, 0, k)
				got := seed.Clone()
				AddMatMulABT(got, a, b)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%v: element %d differs", dims, i)
					}
				}
			}
		})
	}
}

// TestParallelAddMatMulATBBitwise covers the aᵀ·b accumulate kernel: its
// panels band the output rows (= a's columns) while keeping the row scan
// ascending inside each band.
func TestParallelAddMatMulATBBitwise(t *testing.T) {
	for _, workers := range []int{2, 3, 5, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			forceParallel(t, workers)
			rng := rand.New(rand.NewSource(23))
			for _, dims := range [][3]int{{1, 33, 6}, {33, 1, 6}, {257, 5, 3}, {5, 257, 3}, {31, 33, 29}, {64, 64, 64}} {
				r, k, c := dims[0], dims[1], dims[2]
				a := RandNormal(r, k, 0, 1, rng)
				b := RandNormal(r, c, 0, 1, rng)
				seed := RandNormal(k, c, 0, 1, rng)
				want := seed.Clone()
				addMatMulATBPanel(want, a, b, 0, k)
				got := seed.Clone()
				AddMatMulATB(got, a, b)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%v: element %d differs", dims, i)
					}
				}
			}
		})
	}
}

// TestParallelCutoffBrackets pins the cutoff's intent: a typical LSTM-step
// GEMM (16×30×64) stays serial, the benchmark sweep's large shapes (≥ 256³)
// parallelize.
func TestParallelCutoffBrackets(t *testing.T) {
	if 16*30*64 >= parCutoff {
		t.Fatalf("cutoff %d too low: an LSTM-step GEMM would pay dispatch overhead", parCutoff)
	}
	if 256*256*256 < parCutoff {
		t.Fatalf("cutoff %d too high: 256³ GEMMs would stay serial", parCutoff)
	}
}

// TestParallelConcurrentCallers: concurrent MatMulInto calls (the shape the
// batch coalescer workers produce) must stay correct while sharing the panel
// pool. Run under -race in CI.
func TestParallelConcurrentCallers(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(24))
	a := RandNormal(96, 64, 0, 1, rng)
	b := RandNormal(64, 96, 0, 1, rng)
	want := New(96, 96)
	matMulPanel(want, a, b, 0, 96, 0, 96)

	var wg sync.WaitGroup
	errs := make(chan int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := New(96, 96)
			for iter := 0; iter < 25; iter++ {
				MatMulInto(out, a, b)
				for i := range want.Data {
					if out.Data[i] != want.Data[i] {
						errs <- i
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if i, bad := <-errs; bad {
		t.Fatalf("concurrent parallel MatMulInto diverged at element %d", i)
	}
}

// TestSetWorkersClamps pins the knob semantics: non-positive selects
// GOMAXPROCS, Workers never reports below 1.
func TestSetWorkersClamps(t *testing.T) {
	defer SetWorkers(1)
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0)", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(1)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", Workers())
	}
}
