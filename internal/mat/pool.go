package mat

// Pool is a size-keyed free-list of matrices. It exists so hot paths that
// burn through short-lived matrices (the autodiff tape's forward values,
// gradient buffers and backward temporaries) can recycle backing storage
// instead of churning the garbage collector.
//
// Ownership rules (see DESIGN.md "Buffer ownership"):
//
//   - A Pool is NOT safe for concurrent use. Each goroutine that recycles
//     matrices owns its own Pool (in practice: one per nn.Tape, and a Tape
//     is single-goroutine by contract).
//   - Put transfers ownership of the matrix AND its backing slice to the
//     pool; the caller must not retain any reference to either.
//   - Get returns a matrix with the requested shape and UNSPECIFIED
//     contents. Callers that need zeros must clear it (or use GetZeroed).
//
// Matrices are keyed by element count, not shape: a recycled 4×6 buffer can
// be handed back as 3×8. The zero value is ready to use.
type Pool struct {
	free map[int][]*Matrix
}

// Get returns a rows×cols matrix with unspecified contents, recycling a
// previously Put buffer of the same element count when one is available.
func (p *Pool) Get(rows, cols int) *Matrix {
	n := rows * cols
	if l := p.free[n]; len(l) > 0 {
		m := l[len(l)-1]
		p.free[n] = l[:len(l)-1]
		m.Rows, m.Cols = rows, cols
		return m
	}
	return New(rows, cols)
}

// GetZeroed returns a zero-filled rows×cols matrix from the pool.
func (p *Pool) GetZeroed(rows, cols int) *Matrix {
	m := p.Get(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Put returns m to the free-list. m must not be used by the caller again.
// Nil matrices are ignored.
func (p *Pool) Put(m *Matrix) {
	if m == nil {
		return
	}
	if p.free == nil {
		p.free = make(map[int][]*Matrix)
	}
	n := len(m.Data)
	p.free[n] = append(p.free[n], m)
}
