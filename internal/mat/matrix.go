// Package mat provides dense float64 matrices and the small set of linear
// algebra routines the rest of the library is built on. It is deliberately
// BLAS-free and allocation-conscious: every neural component in this
// repository (internal/nn and the models built on it) reduces to the
// operations defined here.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty matrix. Matrices returned by the constructors
// in this package own their backing slice; methods that return a new Matrix
// never alias the receiver unless documented otherwise.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries in row-major order: element (i, j) lives at
	// Data[i*Cols+j].
	Data []float64
}

// New returns a zero-initialized rows×cols matrix.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a rows×cols matrix that takes ownership of data.
// It panics if len(data) != rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix whose i-th row is rows[i]. All rows must have
// equal length. An empty input yields a 0×0 matrix.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: FromRows ragged input: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// RowVector builds a 1×len(v) matrix copying v.
func RowVector(v []float64) *Matrix {
	m := New(1, len(v))
	copy(m.Data, v)
	return m
}

// ColVector builds a len(v)×1 matrix copying v.
func ColVector(v []float64) *Matrix {
	m := New(len(v), 1)
	copy(m.Data, v)
	return m
}

// At returns element (i, j). Bounds are checked by the slice access.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all entries of m to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all entries of m to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and n have identical dimensions.
func (m *Matrix) SameShape(n *Matrix) bool { return m.Rows == n.Rows && m.Cols == n.Cols }

func (m *Matrix) assertSameShape(n *Matrix, op string) {
	if !m.SameShape(n) {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, n.Rows, n.Cols))
	}
}

// Add returns m + n element-wise.
func (m *Matrix) Add(n *Matrix) *Matrix {
	m.assertSameShape(n, "Add")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out
}

// AddInPlace accumulates n into m and returns m.
func (m *Matrix) AddInPlace(n *Matrix) *Matrix {
	m.assertSameShape(n, "AddInPlace")
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
	return m
}

// Sub returns m − n element-wise.
func (m *Matrix) Sub(n *Matrix) *Matrix {
	m.assertSameShape(n, "Sub")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// MulElem returns the Hadamard (element-wise) product m ⊙ n.
func (m *Matrix) MulElem(n *Matrix) *Matrix {
	m.assertSameShape(n, "MulElem")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] * n.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every entry by s and returns m.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaledInPlace accumulates s·n into m and returns m.
func (m *Matrix) AddScaledInPlace(s float64, n *Matrix) *Matrix {
	m.assertSameShape(n, "AddScaledInPlace")
	for i := range m.Data {
		m.Data[i] += s * n.Data[i]
	}
	return m
}

// MatMul returns the matrix product m·n. It panics unless m.Cols == n.Rows.
//
// MatMul allocates its result and is therefore a cold-path convenience:
// hot paths must use MatMulInto with a caller-owned (typically pooled)
// output, which is how every tape op and batch-scoring kernel in this
// repository is routed. The same applies to the other allocating helpers
// (Add, Sub, Scale, T, Apply): the nn tape performs these element-wise ops
// through its own pooled buffers, so no remaining hot path allocates
// through them — see the allocation audit notes in DESIGN.md.
func (m *Matrix) MatMul(n *Matrix) *Matrix {
	out := New(m.Rows, n.Cols)
	MatMulInto(out, m, n)
	return out
}

// MatMulInto computes out = a·b, overwriting out. out must be a.Rows×b.Cols
// and must not alias a or b. The kernel is a register-blocked ikj loop: four
// rows of b are folded per pass over the output row, so each out element is
// loaded and stored once per four multiply-adds while all three operands
// stream through contiguous memory. The data here is dense (features,
// activations, gradients), so there is deliberately no zero-skip branch in
// the inner loop: on dense inputs the branch misprediction costs more than
// the skipped arithmetic saves.
//
// Above the size cutoff and with SetWorkers above one, the output is
// partitioned into row panels (column panels for short, wide shapes) computed
// on the package worker pool; each element's accumulation order is unchanged,
// so the result is bitwise identical to the serial kernel (see parallel.go).
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulInto output %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if nw := Workers(); nw > 1 && a.Rows*a.Cols*b.Cols >= parCutoff {
		if a.Rows >= b.Cols {
			if parFor(a.Rows, nw, func(lo, hi int) { matMulPanel(out, a, b, lo, hi, 0, b.Cols) }) {
				return
			}
		} else if parFor(b.Cols, nw, func(lo, hi int) { matMulPanel(out, a, b, 0, a.Rows, lo, hi) }) {
			return
		}
	}
	matMulPanel(out, a, b, 0, a.Rows, 0, b.Cols)
}

// matMulPanel computes the [i0,i1)×[j0,j1) panel of out = a·b with the
// register-blocked ikj kernel. Panels write disjoint regions of out, and
// each element's k-order accumulation is identical for every panel split.
func matMulPanel(out, a, b *Matrix, i0, i1, j0, j1 int) {
	ac, bc := a.Cols, b.Cols
	for i := i0; i < i1; i++ {
		arow := a.Data[i*ac : (i+1)*ac]
		orow := out.Data[i*bc+j0 : i*bc+j1]
		for j := range orow {
			orow[j] = 0
		}
		k := 0
		for ; k+4 <= ac; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := b.Data[k*bc+j0 : k*bc+j1]
			b1 := b.Data[(k+1)*bc+j0 : (k+1)*bc+j1]
			b2 := b.Data[(k+2)*bc+j0 : (k+2)*bc+j1]
			b3 := b.Data[(k+3)*bc+j0 : (k+3)*bc+j1]
			for j, o := range orow {
				orow[j] = o + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < ac; k++ {
			av := arow[k]
			brow := b.Data[k*bc+j0 : k*bc+j1]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddMatMulABT accumulates a·bᵀ into out: out (r×k) += a (r×c) · bᵀ (c×k,
// given as b k×c). This is the dA = dOut·Bᵀ half of the MatMul backward
// pass, fused so the transpose is never materialized: each output element
// is a dot product of two contiguous rows.
func AddMatMulABT(out, a, b *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("mat: AddMatMulABT shapes %dx%d += %dx%d · (%dx%d)ᵀ", out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if nw := Workers(); nw > 1 && a.Rows*b.Rows*a.Cols >= parCutoff {
		if a.Rows >= b.Rows {
			if parFor(a.Rows, nw, func(lo, hi int) { addMatMulABTPanel(out, a, b, lo, hi, 0, b.Rows) }) {
				return
			}
		} else if parFor(b.Rows, nw, func(lo, hi int) { addMatMulABTPanel(out, a, b, 0, a.Rows, lo, hi) }) {
			return
		}
	}
	addMatMulABTPanel(out, a, b, 0, a.Rows, 0, b.Rows)
}

// addMatMulABTPanel accumulates the [i0,i1)×[k0,k1) panel of out += a·bᵀ.
// Each out element is one private dot product, so any panel split leaves
// the arithmetic bitwise identical to the serial kernel.
func addMatMulABTPanel(out, a, b *Matrix, i0, i1, k0, k1 int) {
	c := a.Cols
	for i := i0; i < i1; i++ {
		arow := a.Data[i*c : (i+1)*c]
		orow := out.Data[i*out.Cols+k0 : i*out.Cols+k1]
		for kk := range orow {
			brow := b.Data[(k0+kk)*c : (k0+kk)*c+c]
			var s0, s1 float64
			j := 0
			for ; j+2 <= c; j += 2 {
				s0 += arow[j] * brow[j]
				s1 += arow[j+1] * brow[j+1]
			}
			if j < c {
				s0 += arow[j] * brow[j]
			}
			orow[kk] += s0 + s1
		}
	}
}

// AddMatMulATB accumulates aᵀ·b into out: out (k×c) += aᵀ (k×r, given as a
// r×k) · b (r×c). This is the dB = Aᵀ·dOut half of the MatMul backward
// pass, fused so the transpose is never materialized: the inner loop is an
// axpy over contiguous rows of b and out.
func AddMatMulATB(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("mat: AddMatMulATB shapes %dx%d += (%dx%d)ᵀ · %dx%d", out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if nw := Workers(); nw > 1 && a.Rows*a.Cols*b.Cols >= parCutoff {
		if parFor(a.Cols, nw, func(lo, hi int) { addMatMulATBPanel(out, a, b, lo, hi) }) {
			return
		}
	}
	addMatMulATBPanel(out, a, b, 0, a.Cols)
}

// addMatMulATBPanel accumulates out rows [k0,k1) of out += aᵀ·b: each worker
// scans every row i of a and b but touches only its own band of out, keeping
// i ascending per element — the same accumulation order as the serial kernel.
func addMatMulATBPanel(out, a, b *Matrix, k0, k1 int) {
	bc := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols+k0 : i*a.Cols+k1]
		brow := b.Data[i*bc : i*bc+bc]
		for kk, av := range arow {
			orow := out.Data[(k0+kk)*bc : (k0+kk)*bc+bc]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Apply returns a new matrix with f applied to every entry.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all entries, or 0 for an empty matrix.
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ConcatCols returns [m | n]: the matrices stacked horizontally.
// Both must have the same number of rows.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: ConcatCols row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		off := i * cols
		for _, m := range ms {
			copy(out.Data[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// ConcatRows stacks the matrices vertically. All must share a column count.
func ConcatRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("mat: ConcatRows col mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return out
}

// SliceRows returns a copy of rows [from, to) of m.
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("mat: SliceRows [%d,%d) out of range for %d rows", from, to, m.Rows))
	}
	out := New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

// SliceCols returns a copy of columns [from, to) of m.
func (m *Matrix) SliceCols(from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("mat: SliceCols [%d,%d) out of range for %d cols", from, to, m.Cols))
	}
	out := New(m.Rows, to-from)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[from:to])
	}
	return out
}

// SoftmaxRows returns a matrix where each row of m is replaced by its
// softmax. The implementation subtracts the row max for numerical stability.
func (m *Matrix) SoftmaxRows() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// EqualApprox reports whether m and n have the same shape and all entries
// within tol of each other.
func (m *Matrix) EqualApprox(n *Matrix, tol float64) bool {
	if !m.SameShape(n) {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders m for debugging; large matrices are abbreviated.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	const maxShown = 8
	for i, v := range m.Data {
		if i >= maxShown {
			fmt.Fprintf(&b, " …(%d more)", len(m.Data)-maxShown)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4g", v)
	}
	b.WriteByte(']')
	return b.String()
}
