package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul is the textbook triple loop, the reference the optimized
// kernels are checked against.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Odd sizes exercise the unrolled kernel's remainder loop.
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 13, 3}, {4, 1, 9}, {16, 17, 16}, {3, 8, 1}} {
		r, k, c := dims[0], dims[1], dims[2]
		a := RandNormal(r, k, 0, 1, rng)
		b := RandNormal(k, c, 0, 1, rng)
		got := a.MatMul(b)
		want := naiveMatMul(a, b)
		if !got.EqualApprox(want, 1e-12) {
			t.Fatalf("MatMul %dx%d·%dx%d diverges from naive", r, k, k, c)
		}
	}
}

func TestMatMulDenseNoZeroSkip(t *testing.T) {
	// Zeros in the left operand must still produce exact results (the old
	// kernel special-cased them; the new one must not need to).
	a := FromRows([][]float64{{0, 2, 0}, {1, 0, 3}})
	b := FromRows([][]float64{{5, 6}, {7, 8}, {9, 10}})
	got := a.MatMul(b)
	want := naiveMatMul(a, b)
	if !got.EqualApprox(want, 0) {
		t.Fatalf("MatMul with zero entries: got %v want %v", got, want)
	}
}

func TestAddMatMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][3]int{{2, 3, 4}, {5, 1, 7}, {1, 6, 1}, {4, 9, 5}} {
		r, c, k := dims[0], dims[1], dims[2]
		a := RandNormal(r, c, 0, 1, rng)   // dOut
		b := RandNormal(k, c, 0, 1, rng)   // B (the kernel consumes Bᵀ implicitly)
		out := RandNormal(r, k, 0, 1, rng) // pre-filled: kernel must accumulate
		want := out.Add(naiveMatMul(a, b.T()))
		AddMatMulABT(out, a, b)
		if !out.EqualApprox(want, 1e-12) {
			t.Fatalf("AddMatMulABT %v diverges from naive a·bᵀ", dims)
		}
	}
}

func TestAddMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][3]int{{2, 3, 4}, {5, 1, 7}, {1, 6, 1}, {4, 9, 5}} {
		r, k, c := dims[0], dims[1], dims[2]
		a := RandNormal(r, k, 0, 1, rng)   // A
		b := RandNormal(r, c, 0, 1, rng)   // dOut
		out := RandNormal(k, c, 0, 1, rng) // pre-filled: kernel must accumulate
		want := out.Add(naiveMatMul(a.T(), b))
		AddMatMulATB(out, a, b)
		if !out.EqualApprox(want, 1e-12) {
			t.Fatalf("AddMatMulATB %v diverges from naive aᵀ·b", dims)
		}
	}
}

func TestMatMulIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with wrong output shape did not panic")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(3, 4))
}

func TestPoolRecyclesBySize(t *testing.T) {
	var p Pool
	m := p.Get(2, 3)
	for i := range m.Data {
		m.Data[i] = math.Pi
	}
	p.Put(m)
	// Same element count, different shape: must reuse the backing slice.
	r := p.Get(3, 2)
	if &r.Data[0] != &m.Data[0] {
		t.Fatal("pool did not recycle same-size buffer")
	}
	if r.Rows != 3 || r.Cols != 2 {
		t.Fatalf("recycled matrix has shape %dx%d, want 3x2", r.Rows, r.Cols)
	}
	z := p.GetZeroed(3, 2)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty buffer")
		}
	}
	// Different size: fresh allocation, not a resliced recycle.
	q := p.Get(4, 4)
	if len(q.Data) != 16 {
		t.Fatalf("Get(4,4) len %d", len(q.Data))
	}
	p.Put(nil) // must not panic
}
