package mat

import (
	"math"
	"math/rand"
)

// XavierUniform returns a rows×cols matrix with entries drawn uniformly
// from [-a, a] where a = sqrt(6/(fanIn+fanOut)). This is the Glorot
// initialization used for the tanh/sigmoid layers in this library.
func XavierUniform(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	a := math.Sqrt(6 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * a
	}
	return m
}

// HeNormal returns a rows×cols matrix with entries ~ N(0, 2/fanIn), the
// standard initialization for ReLU layers.
func HeNormal(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	std := math.Sqrt(2 / float64(rows))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandNormal returns a rows×cols matrix with entries ~ N(mean, std²).
func RandNormal(rows, cols int, mean, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = mean + rng.NormFloat64()*std
	}
	return m
}

// RandUniform returns a rows×cols matrix with entries uniform in [lo, hi).
func RandUniform(rows, cols int, lo, hi float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}
