package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAddScaleVec(t *testing.T) {
	got := AddVec([]float64{1, 2}, []float64{3, 4})
	if got[0] != 4 || got[1] != 6 {
		t.Fatalf("AddVec = %v", got)
	}
	s := ScaleVec(2, []float64{1, -1})
	if s[0] != 2 || s[1] != -2 {
		t.Fatalf("ScaleVec = %v", s)
	}
}

func TestNormSumVec(t *testing.T) {
	if got := NormVec([]float64{3, 4}); got != 5 {
		t.Fatalf("NormVec = %v", got)
	}
	if got := SumVec([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("SumVec = %v", got)
	}
}

func TestSoftmaxVec(t *testing.T) {
	s := Softmax([]float64{1000, 1000})
	if math.Abs(s[0]-0.5) > 1e-12 {
		t.Fatalf("unstable softmax %v", s)
	}
	if len(Softmax(nil)) != 0 {
		t.Fatal("empty softmax should be empty")
	}
	f := func(a, b, c float64) bool {
		in := []float64{math.Mod(a, 30), math.Mod(b, 30), math.Mod(c, 30)}
		for i, v := range in {
			if math.IsNaN(v) {
				in[i] = 0
			}
		}
		out := Softmax(in)
		var sum float64
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize([]float64{1, 3})
	if math.Abs(n[0]-0.25) > 1e-12 || math.Abs(n[1]-0.75) > 1e-12 {
		t.Fatalf("Normalize = %v", n)
	}
	z := Normalize([]float64{0, 0})
	if math.Abs(z[0]-0.5) > 1e-12 {
		t.Fatalf("zero-sum Normalize = %v (want uniform)", z)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("Entropy(uniform2) = %v", got)
	}
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Fatalf("Entropy(point mass) = %v", got)
	}
	uni := []float64{0.25, 0.25, 0.25, 0.25}
	peaked := []float64{0.7, 0.1, 0.1, 0.1}
	if Entropy(uni) <= Entropy(peaked) {
		t.Fatal("uniform should have the larger entropy")
	}
}

func TestArgSortDescAndTopK(t *testing.T) {
	a := []float64{0.3, 0.9, 0.1, 0.9}
	idx := ArgSortDesc(a)
	// Ties broken by index: the first 0.9 precedes the second.
	if idx[0] != 1 || idx[1] != 3 || idx[2] != 0 || idx[3] != 2 {
		t.Fatalf("ArgSortDesc = %v", idx)
	}
	top := TopK(a, 2)
	if len(top) != 2 || top[0] != 1 {
		t.Fatalf("TopK = %v", top)
	}
	all := TopK(a, 10)
	if len(all) != 4 {
		t.Fatalf("oversized TopK = %v", all)
	}
}

func TestSigmoidStable(t *testing.T) {
	if got := Sigmoid(1000); got != 1 {
		t.Fatalf("Sigmoid(1000) = %v", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Fatalf("Sigmoid(-1000) = %v", got)
	}
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	// Symmetry: σ(x) + σ(−x) = 1.
	for _, x := range []float64{0.1, 1, 5, 20} {
		if math.Abs(Sigmoid(x)+Sigmoid(-x)-1) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %v", x)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}
