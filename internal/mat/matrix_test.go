package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAt(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if got := m.Data[5]; got != 7 {
		t.Fatalf("row-major layout broken: Data[5] = %v", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatalf("empty FromRows gave %dx%d", empty.Rows, empty.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAddSubMulElem(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := a.Add(b); !got.EqualApprox(FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); !got.EqualApprox(FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.MulElem(b); !got.EqualApprox(FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatalf("MulElem = %v", got)
	}
	// Operands must be unchanged.
	if a.At(0, 0) != 1 || b.At(1, 1) != 8 {
		t.Fatal("inputs mutated")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if got := a.MatMul(b); !got.EqualApprox(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(4, 4, 0, 1, rng)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if got := a.MatMul(id); !got.EqualApprox(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if got := id.MatMul(a); !got.EqualApprox(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	New(2, 3).MatMul(New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", at)
	}
	if !a.T().T().EqualApprox(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n, m, k := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := RandNormal(n, m, 0, 1, rng)
		b := RandNormal(m, k, 0, 1, rng)
		left := a.MatMul(b).T()
		right := b.T().MatMul(a.T())
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndInPlace(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, -2, 3})
	if got := a.Scale(2); !got.EqualApprox(FromSlice(1, 3, []float64{2, -4, 6}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	a.ScaleInPlace(-1)
	if !a.EqualApprox(FromSlice(1, 3, []float64{-1, 2, -3}), 0) {
		t.Fatalf("ScaleInPlace = %v", a)
	}
	a.AddScaledInPlace(2, FromSlice(1, 3, []float64{1, 1, 1}))
	if !a.EqualApprox(FromSlice(1, 3, []float64{1, 4, -1}), 0) {
		t.Fatalf("AddScaledInPlace = %v", a)
	}
}

func TestSumMeanNorms(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, -4})
	if a.Sum() != 2 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 0.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if math.Abs(a.Norm2()-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
	empty := New(0, 0)
	if empty.Mean() != 0 || empty.MaxAbs() != 0 {
		t.Fatal("empty-matrix stats should be zero")
	}
}

func TestConcatCols(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	got := ConcatCols(a, b)
	want := FromSlice(2, 3, []float64{1, 3, 4, 2, 5, 6})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("ConcatCols = %v, want %v", got, want)
	}
}

func TestConcatRows(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	got := ConcatRows(a, b)
	want := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("ConcatRows = %v, want %v", got, want)
	}
}

func TestSliceRowsCols(t *testing.T) {
	a := FromSlice(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	r := a.SliceRows(1, 3)
	if !r.EqualApprox(FromSlice(2, 3, []float64{4, 5, 6, 7, 8, 9}), 0) {
		t.Fatalf("SliceRows = %v", r)
	}
	c := a.SliceCols(0, 2)
	if !c.EqualApprox(FromSlice(3, 2, []float64{1, 2, 4, 5, 7, 8}), 0) {
		t.Fatalf("SliceCols = %v", c)
	}
	// Slices are copies, not views.
	r.Set(0, 0, 99)
	if a.At(1, 0) == 99 {
		t.Fatal("SliceRows aliases the source")
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	s := a.SoftmaxRows()
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Large equal logits → uniform (stability check).
	if math.Abs(s.At(1, 0)-1.0/3) > 1e-12 {
		t.Fatalf("unstable softmax: %v", s.Row(1))
	}
	// Monotone within row.
	if !(s.At(0, 0) < s.At(0, 1) && s.At(0, 1) < s.At(0, 2)) {
		t.Fatal("softmax not monotone in logits")
	}
}

// Property: softmax rows always sum to 1 and stay in [0,1].
func TestSoftmaxRowsProperty(t *testing.T) {
	f := func(vals [6]float64) bool {
		data := make([]float64, 6)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			data[i] = math.Mod(v, 50)
		}
		s := FromSlice(2, 3, data).SoftmaxRows()
		for i := 0; i < 2; i++ {
			var sum float64
			for j := 0; j < 3; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases source data")
	}
}

func TestApply(t *testing.T) {
	a := FromSlice(1, 3, []float64{-1, 0, 2})
	got := a.Apply(math.Abs)
	if !got.EqualApprox(FromSlice(1, 3, []float64{1, 0, 2}), 0) {
		t.Fatalf("Apply = %v", got)
	}
}

func TestXavierBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := XavierUniform(20, 30, rng)
	bound := math.Sqrt(6.0 / 50.0)
	for _, v := range m.Data {
		if math.Abs(v) > bound {
			t.Fatalf("Xavier entry %v outside ±%v", v, bound)
		}
	}
}

func TestString(t *testing.T) {
	m := FromSlice(3, 4, make([]float64, 12))
	s := m.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
