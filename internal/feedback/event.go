// Package feedback closes the serving loop: a bounded, crash-safe,
// segmented append-only log of click/skip/impression events (Log), the
// ingestor that correlates POST /v1/feedback events to served rerank
// responses and feeds the bandit policy (Ingestor), the provider wrapper
// that puts the λ bandit on the request path (BanditProvider), and the
// re-estimate/republish driver (Trainer) that turns replayed logs into
// canaried online-learned versions through the registry lifecycle.
//
// Ownership: exactly one serving process appends to a log directory (the
// Log takes an exclusive advisory role by construction — the ingestor is
// the only writer goroutine); any number of readers replay concurrently,
// including from other processes (cmd/rapidfeed). Readers never see torn
// records: a record is visible only once its length-prefixed frame is fully
// on disk, and a partial tail frame — a crashed or in-flight write — reads
// as end-of-log, exactly like a truncated segment after kill -9.
package feedback

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/clickmodel"
)

// Event is one durable feedback record: the served impression (items in
// displayed order), the observed clicks, and the serving correlation the
// ingestor attached (route key, version label, bandit arm). The wire-level
// POST /v1/feedback event carries only {request_id, items, clicks}; the
// rest is joined server-side so clients cannot forge routing or attribution.
type Event struct {
	RequestID string `json:"rid"`
	// Route is the request's deterministic routing key (serve.RouteKey);
	// zero when the event arrived uncorrelated (tracking entry evicted or
	// unknown request id).
	Route uint64 `json:"route,omitempty"`
	// Version is the model version label that served the impression.
	Version string `json:"ver,omitempty"`
	// Arm is the bandit arm index that served the impression, -1 otherwise.
	Arm int `json:"arm"`
	// Lambda is the arm's relevance/diversity λ when Arm >= 0.
	Lambda float64 `json:"lambda,omitempty"`
	// UnixMS is the ingestion timestamp.
	UnixMS int64  `json:"t"`
	Items  []int  `json:"items"`
	Clicks []bool `json:"clicks,omitempty"`
}

// Clicked reports whether any position was clicked — the bandit reward.
func (e *Event) Clicked() bool {
	for _, c := range e.Clicks {
		if c {
			return true
		}
	}
	return false
}

// Session converts the event into a click-model session. The user id is
// derived from the route key: stable per logical user (rapidload bodies are
// deterministic per user), which is all the λ=1 DCM fit needs.
func (e *Event) Session() clickmodel.Session {
	return clickmodel.Session{
		User:   int(e.Route % (1 << 31)),
		List:   e.Items,
		Clicks: e.Clicks,
	}
}

// Record framing: every event is stored as
//
//	u32 payloadLen | u64 seq | u32 crc32(seq||payload) | payload(JSON)
//
// Little-endian, IEEE CRC. The CRC covers the sequence number, so a frame
// whose header survived but whose body was torn by a crash fails loudly
// instead of replaying under the wrong position.
const (
	recordHeader = 4 + 8 + 4
	// MaxRecordBytes caps one encoded event. Well above any valid event
	// (MaxListLength items with clicks is ~16 KiB of JSON); a larger length
	// prefix is corruption, not data, and is rejected before allocation.
	MaxRecordBytes = 1 << 20
)

// Decode errors, distinguished because replay treats them differently: a
// truncated tail is the expected shape of a crash mid-write (stop cleanly),
// corruption mid-segment means lost records (stop the segment, count it).
var (
	ErrTruncated = errors.New("feedback: truncated record")
	ErrCorrupt   = errors.New("feedback: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// EncodeRecord frames one event. Encoding cannot fail for any Event value
// within MaxRecordBytes; oversized events error instead of writing a frame
// the decoder would reject.
func EncodeRecord(seq uint64, ev *Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("feedback: encode event: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("feedback: event encodes to %d bytes, limit %d", len(payload), MaxRecordBytes)
	}
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], seq)
	copy(buf[recordHeader:], payload)
	crc := crc32.Update(0, crcTable, buf[4:12])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(buf[12:16], crc)
	return buf, nil
}

// DecodeRecord parses one framed record from the front of b, returning the
// bytes consumed. ErrTruncated means b ends inside the frame (valid prefix
// of a longer stream — or the torn tail of a crashed write); ErrCorrupt
// means the frame is complete but wrong (bad length, CRC mismatch, invalid
// JSON).
func DecodeRecord(b []byte) (seq uint64, ev Event, n int, err error) {
	if len(b) < recordHeader {
		return 0, Event{}, 0, ErrTruncated
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen > MaxRecordBytes {
		return 0, Event{}, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, plen, MaxRecordBytes)
	}
	if len(b) < recordHeader+plen {
		return 0, Event{}, 0, ErrTruncated
	}
	seq = binary.LittleEndian.Uint64(b[4:12])
	want := binary.LittleEndian.Uint32(b[12:16])
	payload := b[recordHeader : recordHeader+plen]
	crc := crc32.Update(0, crcTable, b[4:12])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != want {
		return 0, Event{}, 0, fmt.Errorf("%w: crc mismatch at seq %d", ErrCorrupt, seq)
	}
	if err := json.Unmarshal(payload, &ev); err != nil {
		return 0, Event{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return seq, ev, recordHeader + plen, nil
}
