package feedback

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bandit"
	"repro/internal/serve"
)

// fakeBase is a minimal base provider with distinguishable pins.
type fakeBase struct{ active, picked serve.Pinned }

func (f *fakeBase) Active() serve.Pinned     { return f.active }
func (f *fakeBase) Pick(uint64) serve.Pinned { return f.picked }

func newFakeBase() *fakeBase {
	obs := func(string, time.Duration) {}
	return &fakeBase{
		active: serve.Pinned{Version: "v-active", Observe: obs},
		picked: serve.Pinned{Version: "v-picked", Observe: obs},
	}
}

func TestBanditProviderSplit(t *testing.T) {
	pol := testPolicy(t)
	base := newFakeBase()

	off, err := NewBanditProvider(base, pol, 0)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 100; key++ {
		if pin := off.Pick(key); pin.Version != "v-picked" {
			t.Fatalf("0%% bandit must pass through, got %q", pin.Version)
		}
	}

	full, err := NewBanditProvider(base, pol, 100)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 100; key++ {
		pin := full.Pick(key)
		if !strings.HasPrefix(pin.Version, "bandit-") {
			t.Fatalf("100%% bandit must serve an arm, got %q", pin.Version)
		}
		if _, ok := pol.ArmIndex(pin.Version); !ok {
			t.Fatalf("arm label %q does not resolve", pin.Version)
		}
		if pin.Canary || pin.Observe != nil || pin.ShadowBatch != nil {
			t.Fatalf("arm pin must not carry canary/lifecycle hooks: %+v", pin)
		}
		if pin.Scorer == nil {
			t.Fatal("arm pin has no scorer")
		}
	}
	if full.Active().Version != "v-active" {
		t.Fatal("Active must pass through")
	}

	// ~30% split, measured over many keys; the hash split should land within
	// a generous tolerance, and per-key decisions must be deterministic.
	part, err := NewBanditProvider(base, pol, 30)
	if err != nil {
		t.Fatal(err)
	}
	banditServed := 0
	const n = 20_000
	for key := uint64(0); key < n; key++ {
		pin := part.Pick(key)
		isArm := strings.HasPrefix(pin.Version, "bandit-")
		if isArm {
			banditServed++
		}
		again := strings.HasPrefix(part.Pick(key).Version, "bandit-")
		if again != isArm {
			t.Fatalf("split not deterministic for key %d", key)
		}
	}
	frac := float64(banditServed) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("bandit share %.3f far from 0.30", frac)
	}
}

func TestBanditProviderRejectsUnknownArm(t *testing.T) {
	pol, err := bandit.NewPolicy(bandit.PolicyConfig{
		Arms: []bandit.Arm{{Name: "no-such-diversifier", Lambda: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBanditProvider(newFakeBase(), pol, 10); err == nil {
		t.Fatal("unknown diversifier arm must fail construction")
	}
}
