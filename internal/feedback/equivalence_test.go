package feedback

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clickmodel"
)

// logSessions appends n synthetic click sessions to the log and returns them
// in append order, so tests can compare replayed state against ground truth.
func logSessions(t *testing.T, l *Log, n int, seed int64) []clickmodel.Session {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]clickmodel.Session, 0, n)
	for i := 0; i < n; i++ {
		items := rng.Perm(6)[:4]
		clicks := make([]bool, 4)
		for k := range clicks {
			clicks[k] = rng.Float64() < 0.3
		}
		ev := &Event{
			RequestID: "r", Route: uint64(rng.Intn(1000)), Arm: -1,
			UnixMS: int64(i), Items: items, Clicks: clicks,
		}
		if _, err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
		out = append(out, ev.Session())
	}
	return out
}

func closeEnough(t *testing.T, got, want *clickmodel.Estimated, tol float64) {
	t.Helper()
	for v, w := range want.Alpha {
		if math.Abs(got.Alpha[v]-w) > tol {
			t.Fatalf("alpha[%d] = %.15f, batch %.15f", v, got.Alpha[v], w)
		}
	}
	for k := range want.Eps {
		if math.Abs(got.Eps[k]-want.Eps[k]) > tol {
			t.Fatalf("eps[%d] = %.15f, batch %.15f", k, got.Eps[k], want.Eps[k])
		}
	}
}

// TestReplayedIncrementalMatchesBatch closes the loop end to end on the
// persistence layer: sessions encoded into the segmented log, replayed, and
// streamed into the incremental estimator must fit the same parameters as the
// batch MLE over the original in-memory sessions.
func TestReplayedIncrementalMatchesBatch(t *testing.T) {
	const maxLen = 4
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	truth := logSessions(t, l, 2000, 7)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, st, err := ReplaySessions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(truth) || st.Corrupt != 0 || st.Truncated {
		t.Fatalf("replay lost sessions: %d of %d (stats %+v)", len(replayed), len(truth), st)
	}

	batch := clickmodel.Estimate(truth, 1.0, 2, nil, maxLen)
	inc := clickmodel.NewIncremental(maxLen)
	for _, s := range replayed {
		inc.Add(s)
	}
	closeEnough(t, inc.Estimate(2, nil), batch, 1e-9)
}

// TestReplayedIncrementalAfterTornTail: a crash mid-append leaves a torn
// frame. The incremental fit over the recovered replay must equal the batch
// MLE over exactly the durable prefix — the torn session is gone from both.
func TestReplayedIncrementalAfterTornTail(t *testing.T) {
	const maxLen = 4
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	truth := logSessions(t, l, 500, 13)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the active segment: half a frame of a would-be 501st event.
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeRecord(501, &Event{RequestID: "torn", Arm: -1, Items: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, names[len(names)-1]), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	replayed, st, err := ReplaySessions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(truth) || !st.Truncated {
		t.Fatalf("torn-tail replay: %d sessions, truncated=%v; want %d, true", len(replayed), st.Truncated, len(truth))
	}

	batch := clickmodel.Estimate(truth, 1.0, 2, nil, maxLen)
	inc := clickmodel.NewIncremental(maxLen)
	for _, s := range replayed {
		inc.Add(s)
	}
	closeEnough(t, inc.Estimate(2, nil), batch, 1e-9)

	// Recovery discipline: reopening truncates the torn bytes, and appends
	// resume the sequence so the estimator's cursor semantics stay exact.
	l2, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l2.Append(&Event{RequestID: "next", Arm: -1, Items: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 501 {
		t.Fatalf("post-recovery seq = %d, want 501", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}
