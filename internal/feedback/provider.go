package feedback

import (
	"fmt"

	"repro/internal/bandit"
	"repro/internal/diversify"
	"repro/internal/serve"
)

// BanditProvider puts the λ bandit on the request path: it wraps the
// registry provider and serves a configured share of traffic through the
// policy's chosen diversifier arm instead of the active model version. Arm
// scorers are built once at construction — one comparable *diversify.Scorer
// per arm — so the serving coalescer batches bandit traffic per arm exactly
// like any other version.
//
// The bandit split hashes the route key (splitmix64) before the percent
// comparison, so it is statistically independent of the registry's canary
// split (raw key % 10000): carving out bandit traffic dilutes canary volume
// proportionally but never biases which requests the canary sees.
type BanditProvider struct {
	base    serve.Provider
	policy  *bandit.Policy
	percent float64
	scorers []serve.Scorer // one per arm, index-aligned with policy.Arms()
	labels  []string
}

// NewBanditProvider validates every arm against the diversifier registry and
// builds the wrapper. percent is the share of traffic (0–100) the bandit
// serves; 0 returns a provider that always passes through.
func NewBanditProvider(base serve.Provider, policy *bandit.Policy, percent float64) (*BanditProvider, error) {
	if percent < 0 || percent > 100 {
		return nil, fmt.Errorf("feedback: bandit percent %.2f outside [0,100]", percent)
	}
	arms := policy.Arms()
	p := &BanditProvider{
		base:    base,
		policy:  policy,
		percent: percent,
		scorers: make([]serve.Scorer, len(arms)),
		labels:  make([]string, len(arms)),
	}
	for i, a := range arms {
		ds, err := diversify.NewScorer(a.Name, a.Lambda)
		if err != nil {
			return nil, fmt.Errorf("feedback: arm %s: %w", a.Label(), err)
		}
		p.scorers[i] = ds
		p.labels[i] = a.Label()
	}
	return p, nil
}

// Active implements serve.Provider: the active model is always the base's —
// the bandit never owns /healthz or warm paths.
func (p *BanditProvider) Active() serve.Pinned { return p.base.Active() }

// Pick implements serve.Provider. A request in the bandit slice is served by
// the policy-selected arm over the active version's manifest geometry (the
// arm is weightless — it re-ranks whatever surface the active model defines);
// everything else passes through to the base provider, canary split included.
func (p *BanditProvider) Pick(key uint64) serve.Pinned {
	if p.percent > 0 && float64(splitmix64(key)%10_000) < p.percent*100 {
		arm := p.policy.Select(key)
		pin := p.base.Active()
		pin.Scorer = p.scorers[arm]
		pin.Version = p.labels[arm]
		pin.Canary = false
		// Arm traffic must not land in the active version's lifecycle
		// counters (it would dilute the auto-rollback comparison) and never
		// shadow-scores: the bandit's own feedback loop is its evaluation.
		pin.Observe = nil
		pin.ShadowBatch = nil
		pin.ShadowVersion = ""
		return pin
	}
	return p.base.Pick(key)
}

// splitmix64 is the splitmix64 finalizer, decorrelating the bandit split
// from the canary split's raw key % 10000.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
