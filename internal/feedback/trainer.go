package feedback

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bandit"
	"repro/internal/clickmodel"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
)

// Lifecycle is the slice of the model lifecycle the trainer drives: list
// versions, stage one as the canary candidate, promote it. registry.Registry
// satisfies it in-process; AdminClient satisfies it over the admin HTTP API,
// so cmd/rapidfeed can drive a running rapidserve from outside the process.
type Lifecycle interface {
	Versions() ([]serve.VersionStatus, error)
	Load(version string) error
	Promote(version string) error
}

// TrainerConfig bounds a Trainer. LogDir, ModelRoot and Lifecycle are
// required; the zero value of every other field falls back to the listed
// default.
type TrainerConfig struct {
	// LogDir is the feedback log directory to replay.
	LogDir string
	// ModelRoot is the registry store the trainer publishes into. The newest
	// committed version's manifest supplies the surface geometry for the
	// published online-learned version.
	ModelRoot string
	// Lifecycle stages and promotes what the trainer publishes.
	Lifecycle Lifecycle
	// Policy, when set, supplies arm statistics from the in-process bandit.
	// nil (the cross-process rapidfeed shape) recovers arm statistics from
	// the replayed log's Arm/Lambda fields instead — same numbers, read back
	// from disk.
	Policy *bandit.Policy
	// Interval is the re-estimation cadence for Run (default 15s).
	Interval time.Duration
	// MinEvents is how many new events must accumulate before a re-estimate
	// and republish happens (default 200).
	MinEvents int
	// MaxLen is the click-model position horizon (default 64).
	MaxLen int
	// MinArmPulls gates arm selection: an arm with less evidence cannot be
	// published (default 50). With no qualifying arm the trainer publishes
	// DefaultDiversifier@DefaultLambda.
	MinArmPulls int64
	// DefaultDiversifier/DefaultLambda are the fallback λ choice before the
	// bandit has evidence (defaults "mmr" / 0.5).
	DefaultDiversifier string
	DefaultLambda      float64
	// PromoteAfter is the canary traffic (requests served by the candidate)
	// the trainer waits for before promoting (default 50). The wait is what
	// arms auto-rollback: a candidate that degrades is demoted by the
	// registry while the trainer watches, and the trainer then aborts the
	// promote instead of forcing a bad version active.
	PromoteAfter int64
	// PromotePoll and PromoteTimeout bound the canary watch (defaults 250ms
	// and 60s). On timeout the candidate stays staged — promotion is retried
	// on the next cycle rather than forced.
	PromotePoll    time.Duration
	PromoteTimeout time.Duration
	// Publish overrides how a manifest becomes an on-disk version; nil uses
	// registry.PublishDiversifier into ModelRoot. The seam is where a full
	// neural retrain would plug in: the log stores item ids and clicks, not
	// feature payloads, so weight retraining stays an offline job (see
	// DESIGN.md) and the online loop republishes λ choices.
	Publish func(label string, man serve.Manifest) (string, error)
	// Registry receives the trainer metrics; nil means a private one.
	Registry *obs.Registry
	// Log receives operational messages; nil uses log.Printf.
	Log func(format string, args ...any)
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 200
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 64
	}
	if c.MinArmPulls <= 0 {
		c.MinArmPulls = 50
	}
	if c.DefaultDiversifier == "" {
		c.DefaultDiversifier = "mmr"
	}
	if c.DefaultLambda <= 0 {
		c.DefaultLambda = 0.5
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 50
	}
	if c.PromotePoll <= 0 {
		c.PromotePoll = 250 * time.Millisecond
	}
	if c.PromoteTimeout <= 0 {
		c.PromoteTimeout = 60 * time.Second
	}
	if c.Log == nil {
		c.Log = log.Printf
	}
	return c
}

// armTally is per-arm evidence recovered from replayed log events.
type armTally struct {
	arm     bandit.Arm
	pulls   int64
	rewards int64
}

// Trainer is the re-estimate/republish driver: replay new log events into
// the incremental click model, and once enough evidence accumulates, publish
// the bandit's best λ as a canaried diversifier version and walk it through
// the registry lifecycle (load → canary watch → promote). Everything an
// online-learned version serves has passed warm-up and canary exactly like
// an offline-trained one.
type Trainer struct {
	cfg     TrainerConfig
	inc     *clickmodel.Incremental
	met     *metrics
	cursor  uint64 // next log seq to replay
	pending int    // events since the last re-estimate
	armsSum map[string]*armTally
	pubSeq  int
}

// NewTrainer validates the config and builds a trainer with an empty model.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.LogDir == "" || cfg.ModelRoot == "" || cfg.Lifecycle == nil {
		return nil, fmt.Errorf("feedback: trainer needs LogDir, ModelRoot and Lifecycle")
	}
	return &Trainer{
		cfg:     cfg,
		inc:     clickmodel.NewIncremental(cfg.MaxLen),
		met:     newMetrics(cfg.Registry),
		cursor:  1,
		armsSum: make(map[string]*armTally),
	}, nil
}

// Incremental exposes the trainer's click model (tests and rapidfeed -dump
// diagnostics read it).
func (t *Trainer) Incremental() *clickmodel.Incremental { return t.inc }

// Run re-estimates on the configured cadence until ctx is canceled.
func (t *Trainer) Run(ctx context.Context) error {
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if err := t.Step(ctx); err != nil {
				t.cfg.Log("feedback: trainer step: %v", err)
			}
		}
	}
}

// Step runs one cycle: replay, and if MinEvents accumulated, re-estimate and
// republish. Exported so tests and the smoke drive cycles deterministically.
func (t *Trainer) Step(ctx context.Context) error {
	n, err := t.replayNew()
	if err != nil {
		return err
	}
	t.pending += n
	if t.pending < t.cfg.MinEvents {
		return nil
	}
	est := t.inc.Estimate(1, nil)
	t.met.reestimates.Inc()
	t.pending = 0
	arm := t.bestArm()
	label, err := t.publish(arm, est)
	if err != nil {
		return err
	}
	t.met.published.Inc()
	t.cfg.Log("feedback: published %s (arm %s, %d sessions, %d clicks)",
		label, arm.Label(), t.inc.Sessions(), t.inc.Clicks())
	return t.deploy(ctx, label)
}

// replayNew folds log events at or past the cursor into the click model and
// the arm tallies.
func (t *Trainer) replayNew() (int, error) {
	n := 0
	st, err := Replay(t.cfg.LogDir, t.cursor, func(seq uint64, ev Event) error {
		t.inc.Add(ev.Session())
		if ev.Arm >= 0 {
			if arm, ok := bandit.ParseArmLabel(ev.Version); ok {
				tal := t.armsSum[ev.Version]
				if tal == nil {
					tal = &armTally{arm: arm}
					t.armsSum[ev.Version] = tal
				}
				tal.pulls++
				if ev.Clicked() {
					tal.rewards++
				}
			}
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	if st.NextSeq > t.cursor {
		t.cursor = st.NextSeq
	}
	return n, nil
}

// bestArm picks the λ to publish: the in-process policy's best arm when one
// is wired, else the best replayed tally, else the configured default.
func (t *Trainer) bestArm() bandit.Arm {
	if t.cfg.Policy != nil {
		if a, ok := t.cfg.Policy.Best(t.cfg.MinArmPulls); ok {
			return a
		}
	} else {
		var best *armTally
		var bestMean float64
		for _, tal := range t.armsSum {
			if tal.pulls < t.cfg.MinArmPulls {
				continue
			}
			if m := float64(tal.rewards) / float64(tal.pulls); best == nil || m > bestMean {
				best, bestMean = tal, m
			}
		}
		if best != nil {
			return best.arm
		}
	}
	return bandit.Arm{Name: t.cfg.DefaultDiversifier, Lambda: t.cfg.DefaultLambda}
}

// publish commits the online-learned version: the newest on-disk manifest
// supplies the surface geometry, the arm supplies the diversifier and λ, and
// the estimated DCM summary lands in the manifest metrics for operator
// forensics. Labels are "div-fb-<n>" — they sort with the other diversifier
// versions and read as feedback-derived at a glance.
func (t *Trainer) publish(arm bandit.Arm, est *clickmodel.Estimated) (string, error) {
	versions, err := registry.Scan(t.cfg.ModelRoot)
	if err != nil {
		return "", err
	}
	if len(versions) == 0 {
		return "", fmt.Errorf("feedback: no versions in %s to copy surface geometry from", t.cfg.ModelRoot)
	}
	base, err := serve.ReadManifest(registry.ModelPath(t.cfg.ModelRoot, versions[len(versions)-1]))
	if err != nil {
		return "", err
	}
	man := serve.Manifest{
		Dataset:           base.Dataset,
		Lambda:            base.Lambda,
		Config:            base.Config,
		Diversifier:       arm.Name,
		DiversifierLambda: arm.Lambda,
		Metrics: map[string]float64{
			"feedback_sessions": float64(t.inc.Sessions()),
			"feedback_clicks":   float64(t.inc.Clicks()),
			"feedback_eps_p0":   firstEps(est),
			"feedback_lambda":   arm.Lambda,
		},
	}
	publish := t.cfg.Publish
	if publish == nil {
		publish = func(label string, man serve.Manifest) (string, error) {
			return registry.PublishDiversifier(t.cfg.ModelRoot, label, man)
		}
	}
	exists := make(map[string]bool, len(versions))
	for _, v := range versions {
		exists[v] = true
	}
	for {
		t.pubSeq++
		label := fmt.Sprintf("div-fb-%d", t.pubSeq)
		if exists[label] {
			continue // survive restarts: skip labels an earlier run committed
		}
		return publish(label, man)
	}
}

func firstEps(est *clickmodel.Estimated) float64 {
	if len(est.Eps) > 0 {
		return est.Eps[0]
	}
	return 0
}

// deploy walks the published version through the lifecycle: stage it as the
// canary candidate, wait for PromoteAfter canary requests, promote. If the
// candidate disappears while watched, auto-rollback (or an operator) killed
// it — the trainer logs and moves on; never promote over a rollback.
func (t *Trainer) deploy(ctx context.Context, label string) error {
	if err := t.cfg.Lifecycle.Load(label); err != nil {
		return fmt.Errorf("feedback: stage %s: %w", label, err)
	}
	t.cfg.Log("feedback: staged %s as canary candidate", label)
	deadline := time.NewTimer(t.cfg.PromoteTimeout)
	defer deadline.Stop()
	poll := time.NewTicker(t.cfg.PromotePoll)
	defer poll.Stop()
	for {
		vs, err := t.cfg.Lifecycle.Versions()
		if err != nil {
			return err
		}
		var cand *serve.VersionStatus
		for i := range vs {
			if vs[i].Version == label {
				cand = &vs[i]
				break
			}
		}
		switch {
		case cand == nil || cand.State == "available":
			t.cfg.Log("feedback: candidate %s was rolled back during canary; not promoting", label)
			return nil
		case cand.State == "active":
			return nil // someone promoted it for us
		case cand.Requests >= t.cfg.PromoteAfter:
			if err := t.cfg.Lifecycle.Promote(label); err != nil {
				return fmt.Errorf("feedback: promote %s: %w", label, err)
			}
			t.met.promotes.Inc()
			t.cfg.Log("feedback: promoted %s after %d canary requests (%d degraded)",
				label, cand.Requests, cand.Degraded)
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			t.cfg.Log("feedback: canary watch for %s timed out at %d/%d requests; leaving it staged",
				label, candRequests(vs, label), t.cfg.PromoteAfter)
			return nil
		case <-poll.C:
		}
	}
}

func candRequests(vs []serve.VersionStatus, label string) int64 {
	for _, v := range vs {
		if v.Version == label {
			return v.Requests
		}
	}
	return 0
}

// ReplaySessions replays a whole log into batch click-model sessions — the
// reference input for the incremental-vs-batch equivalence check.
func ReplaySessions(dir string) ([]clickmodel.Session, ReplayStats, error) {
	var out []clickmodel.Session
	st, err := Replay(dir, 0, func(_ uint64, ev Event) error {
		out = append(out, ev.Session())
		return nil
	})
	return out, st, err
}
