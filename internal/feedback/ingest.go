package feedback

import (
	"sync"

	"repro/internal/bandit"
	"repro/internal/obs"
	"repro/internal/serve"
)

// IngestConfig bounds an Ingestor. The zero value of every field falls back
// to the listed default.
type IngestConfig struct {
	// QueueSize bounds the ingest queue (default 1024). A full queue makes
	// Submit return serve.ErrFeedbackBusy, which the handler maps to 429 —
	// feedback is shed under pressure, never allowed to block serving.
	QueueSize int
	// TrackCap bounds the request-id correlation table (default 65536
	// entries, FIFO eviction). An evicted or unknown id still ingests the
	// event, just uncorrelated (no route, no arm credit).
	TrackCap int
	// Registry receives the feedback metrics; nil means a private one. Pass
	// the serving registry so /metrics carries every namespace.
	Registry *obs.Registry
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.TrackCap <= 0 {
		c.TrackCap = 65536
	}
	return c
}

// tracked is one correlation entry: which (route, version) a request id was
// served from. Written by the request handler at response time, consumed by
// the ingest goroutine when the feedback event arrives.
type tracked struct {
	route   uint64
	version string
}

// Ingestor implements serve.FeedbackSink: it joins POST /v1/feedback events
// to their served responses, appends the joined record to the durable Log,
// and credits the bandit policy. The hot-path methods (Track, Submit) do a
// short mutex section and a non-blocking channel send respectively; all disk
// and learning work happens on the single ingest goroutine, so feedback can
// never add latency to the scoring path.
type Ingestor struct {
	cfg    IngestConfig
	log    *Log
	policy *bandit.Policy // nil when the λ bandit is off
	met    *metrics

	mu    sync.Mutex
	track map[string]tracked
	order []string // FIFO eviction ring over track keys
	head  int

	ch   chan serve.FeedbackEvent
	done chan struct{}
}

// NewIngestor starts the ingest goroutine over an open log. policy may be
// nil (feedback is then logged and replayed but no arm learns online). The
// ingestor takes ownership of the log: Close drains the queue and closes it.
func NewIngestor(l *Log, policy *bandit.Policy, cfg IngestConfig) *Ingestor {
	cfg = cfg.withDefaults()
	in := &Ingestor{
		cfg:    cfg,
		log:    l,
		policy: policy,
		met:    newMetrics(cfg.Registry),
		track:  make(map[string]tracked, cfg.TrackCap),
		order:  make([]string, 0, cfg.TrackCap),
		ch:     make(chan serve.FeedbackEvent, cfg.QueueSize),
		done:   make(chan struct{}),
	}
	if policy != nil {
		// Eager label creation for every arm, same visibility rule as serve.
		for _, a := range policy.Arms() {
			in.met.banditServed.With(a.Label())
			in.met.banditPulls.With(a.Label())
		}
	}
	in.publishLogStats()
	go in.run()
	return in
}

// Track implements serve.FeedbackSink: called by the request handler just
// before the response encodes, it records the served (route, version) under
// the issued request id. Bounded: beyond TrackCap the oldest entry is
// evicted (its late feedback then ingests uncorrelated).
func (in *Ingestor) Track(requestID string, route uint64, version string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, exists := in.track[requestID]; !exists {
		if len(in.track) >= in.cfg.TrackCap {
			evict := in.order[in.head]
			in.order[in.head] = requestID
			in.head = (in.head + 1) % len(in.order)
			delete(in.track, evict)
		} else {
			in.order = append(in.order, requestID)
		}
	}
	in.track[requestID] = tracked{route: route, version: version}
	if in.policy != nil {
		if _, ok := in.policy.ArmIndex(version); ok {
			in.met.banditServed.With(version).Inc()
		}
	}
}

// Submit implements serve.FeedbackSink: a non-blocking enqueue that reports
// serve.ErrFeedbackBusy when the bounded queue is full.
func (in *Ingestor) Submit(ev serve.FeedbackEvent) error {
	select {
	case in.ch <- ev:
		in.met.queue.Set(float64(len(in.ch)))
		return nil
	default:
		return serve.ErrFeedbackBusy
	}
}

// run is the single ingest goroutine: correlate, persist, learn.
func (in *Ingestor) run() {
	defer close(in.done)
	for wire := range in.ch {
		in.met.queue.Set(float64(len(in.ch)))
		in.ingest(wire)
	}
}

func (in *Ingestor) ingest(wire serve.FeedbackEvent) {
	ev := Event{
		RequestID: wire.RequestID,
		Arm:       -1,
		UnixMS:    nowMS(),
		Items:     wire.Items,
		Clicks:    wire.Clicks,
	}
	in.mu.Lock()
	t, correlated := in.track[wire.RequestID]
	in.mu.Unlock()
	if correlated {
		ev.Route = t.route
		ev.Version = t.version
	} else if wire.ModelVersion != "" {
		// The client's advisory copy is better than nothing for an evicted
		// entry, but carries no route — the event stays arm-uncredited.
		ev.Version = wire.ModelVersion
	}
	if in.policy != nil && correlated {
		if arm, ok := in.policy.ArmIndex(ev.Version); ok {
			ev.Arm = arm
			ev.Lambda = in.policy.Arms()[arm].Lambda
		}
	}
	if _, err := in.log.Append(&ev); err != nil {
		in.met.events.With("error").Inc()
		return
	}
	in.met.appended.Inc()
	in.publishLogStats()
	if correlated {
		in.met.events.With("ok").Inc()
	} else {
		in.met.events.With("uncorrelated").Inc()
	}
	reward := 0.0
	if ev.Clicked() {
		in.met.clicks.Inc()
		reward = 1
	}
	if ev.Arm >= 0 && in.policy != nil {
		in.policy.Update(ev.Route, ev.Arm, reward)
		in.met.banditPulls.With(in.policy.Arms()[ev.Arm].Label()).Inc()
		if reward > 0 {
			in.met.banditReward.Inc()
		}
		in.met.banditUpdates.Inc()
		in.met.banditRegret.Set(in.policy.Snapshot().CumRegret)
	}
}

func (in *Ingestor) publishLogStats() {
	st := in.log.Stat()
	in.met.logBytes.Set(float64(st.Bytes))
	in.met.logSegs.Set(float64(st.Segments))
	in.met.logRecs.Set(float64(st.Records))
}

// Close stops accepting events, drains the queue, and closes the log. After
// Close, Submit panics (the serving layer drains before the ingestor closes,
// so ordering is the caller's shutdown sequence: server first, then this).
func (in *Ingestor) Close() error {
	close(in.ch)
	<-in.done
	return in.log.Close()
}
