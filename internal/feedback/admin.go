package feedback

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
)

// AdminClient implements Lifecycle over rapidserve's admin HTTP API, so
// cmd/rapidfeed can drive the lifecycle of a serving process it does not
// share memory with. Token is the bearer admin token (empty works only
// against a loopback listener, matching the server's guard).
type AdminClient struct {
	BaseURL string
	Token   string
	// HTTP is the client used for requests; nil uses a 10s-timeout default.
	HTTP *http.Client
}

func (c *AdminClient) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *AdminClient) do(method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("feedback: admin %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Versions implements Lifecycle via GET /admin/models.
func (c *AdminClient) Versions() ([]serve.VersionStatus, error) {
	var out struct {
		Versions []serve.VersionStatus `json:"versions"`
	}
	if err := c.do(http.MethodGet, "/admin/models", nil, &out); err != nil {
		return nil, err
	}
	return out.Versions, nil
}

// Load implements Lifecycle via POST /admin/models/load.
func (c *AdminClient) Load(version string) error {
	return c.do(http.MethodPost, "/admin/models/load", map[string]string{"version": version}, nil)
}

// Promote implements Lifecycle via POST /admin/models/promote.
func (c *AdminClient) Promote(version string) error {
	return c.do(http.MethodPost, "/admin/models/promote", map[string]string{"version": version}, nil)
}
