package feedback

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFeedbackEvent drives arbitrary bytes through the log record decoder —
// the code path every replay (trainer, rapidfeed, crash recovery) runs over
// bytes that may have been torn or corrupted by a crash. The contract: never
// panic, never allocate unboundedly (the length prefix is capped before any
// allocation), classify every failure as exactly ErrTruncated or ErrCorrupt,
// and round-trip every record the encoder produced.
//
// Seed corpus: valid frames plus the known-tricky shapes (committed under
// testdata/fuzz/FuzzFeedbackEvent; CI runs a -fuzztime smoke on top).
func FuzzFeedbackEvent(f *testing.F) {
	valid, err := EncodeRecord(1, &Event{
		RequestID: "r-1", Route: 42, Version: "bandit-mmr@0.50", Arm: 0,
		Lambda: 0.5, UnixMS: 1700000000000, Items: []int{1, 2, 3}, Clicks: []bool{true},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                                               // torn tail
	f.Add(append([]byte{}, valid[4:]...))                                     // header shifted
	f.Add([]byte{})                                                           // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // huge length prefix
	two := append(append([]byte{}, valid...), valid...)
	f.Add(two) // two concatenated frames: decode must consume exactly one

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, ev, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A decoded record must re-encode to the exact bytes it came from:
		// the frame is canonical, so replay offsets are stable.
		re, err := EncodeRecord(seq, &ev)
		if err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			// JSON field order is deterministic for a struct, so any
			// difference means the decoder accepted a non-canonical frame
			// (e.g. unknown fields or whitespace). That is allowed — JSON
			// payloads are not bit-canonical — but length and seq must agree.
			seq2, _, n2, err := DecodeRecord(re)
			if err != nil || seq2 != seq || n2 != len(re) {
				t.Fatalf("re-encoded frame does not round-trip: %v", err)
			}
		}
	})
}
