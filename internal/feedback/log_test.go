package feedback

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testEvent(i int) *Event {
	return &Event{
		RequestID: "req-" + string(rune('a'+i%26)),
		Route:     uint64(i * 7919),
		Version:   "v1",
		Arm:       i % 3,
		Lambda:    0.5,
		UnixMS:    int64(1000 + i),
		Items:     []int{i, i + 1, i + 2},
		Clicks:    []bool{i%2 == 0, false, false},
	}
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := l.Append(testEvent(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, dir string) ([]uint64, []Event, ReplayStats) {
	t.Helper()
	var seqs []uint64
	var evs []Event
	st, err := Replay(dir, 0, func(seq uint64, ev Event) error {
		seqs = append(seqs, seq)
		evs = append(evs, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, evs, st
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, evs, st := replayAll(t, dir)
	if len(evs) != 10 || st.Events != 10 {
		t.Fatalf("replayed %d events, want 10 (stats %+v)", len(evs), st)
	}
	if st.Truncated || st.Corrupt != 0 {
		t.Fatalf("clean log replayed dirty: %+v", st)
	}
	for i, ev := range evs {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, seqs[i], i+1)
		}
		if !reflect.DeepEqual(&ev, testEvent(i)) {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, ev, testEvent(i))
		}
	}
}

func TestLogRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records; MaxSegments 3 bounds
	// retention to 3 committed + 1 active.
	l, err := Open(dir, Options{SegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 60)
	st := l.Stat()
	if st.Segments > 4 {
		t.Fatalf("retention cap leaked: %d segments live", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _, rst := replayAll(t, dir)
	if len(seqs) == 0 || seqs[len(seqs)-1] != 60 {
		t.Fatalf("newest record must survive retention, got tail %v", seqs)
	}
	// Retained sequences are dense: GC drops whole oldest segments only.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("retained seqs not dense at %d: %v", i, seqs)
		}
	}
	if rst.NextSeq != 61 {
		t.Fatalf("NextSeq = %d, want 61", rst.NextSeq)
	}
}

func TestLogReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l2.Append(testEvent(25))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 26 {
		t.Fatalf("reopened log assigned seq %d, want 26", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _, _ := replayAll(t, dir)
	if len(seqs) != 26 {
		t.Fatalf("replayed %d events after reopen, want 26", len(seqs))
	}
}

// TestLogTornTailRecovery simulates kill -9 mid-write: the tail of the
// active segment holds a partial frame. Open must truncate it, replay must
// return everything before it, and the recovered log must accept appends
// that replay contiguously.
func TestLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a frame to the active segment.
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	active := filepath.Join(dir, names[len(names)-1])
	frame, err := EncodeRecord(6, testEvent(5))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A reader sees the torn tail as end-of-log.
	seqs, _, st := replayAll(t, dir)
	if len(seqs) != 5 || !st.Truncated {
		t.Fatalf("torn-tail replay: %d events, truncated=%v; want 5, true", len(seqs), st.Truncated)
	}

	// Reopen recovers: torn bytes truncated, appends continue at seq 6.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	seq, err := l2.Append(testEvent(5))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("post-recovery append got seq %d, want 6", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _, st = replayAll(t, dir)
	if len(seqs) != 6 || st.Truncated {
		t.Fatalf("post-recovery replay: %d events, truncated=%v; want 6, false", len(seqs), st.Truncated)
	}
}

// TestLogReplayByteIdenticalPrefix is the crash-consistency contract the
// smoke test asserts end to end: what a log replays before more writes is a
// strict prefix of what it replays after them.
func TestLogReplayByteIdenticalPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	before, bevs, _ := replayAll(t, dir) // concurrent reader, writer still open
	appendN(t, l, 20, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	after, aevs, _ := replayAll(t, dir)
	if len(after) < len(before) {
		t.Fatalf("log shrank: %d then %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] || !reflect.DeepEqual(bevs[i], aevs[i]) {
			t.Fatalf("replay prefix diverged at %d", i)
		}
	}
}

// TestLogCorruptMidSegment flips bytes inside a committed (non-newest)
// segment: replay must skip the rest of that segment, count the corruption,
// and keep replaying later segments.
func TestLogCorruptMidSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 30)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("test needs >= 3 segments, got %d", len(names))
	}
	// Corrupt the middle of the first segment (past its first record).
	first := filepath.Join(dir, names[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	_, _, n, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	data[n+20] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seqs, _, st := replayAll(t, dir)
	if st.Corrupt == 0 {
		t.Fatal("corruption not counted")
	}
	if len(seqs) == 0 || seqs[len(seqs)-1] != 30 {
		t.Fatalf("later segments must still replay; tail %v", seqs)
	}
	if seqs[0] != 1 {
		t.Fatalf("records before the corruption must replay; head %v", seqs)
	}
}

// TestLogOpenWithStaleIndex deletes the index: Open must rebuild from the
// segment files alone.
func TestLogOpenWithStaleIndex(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 30)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, IndexFile)); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open without index: %v", err)
	}
	if seq, err := l2.Append(testEvent(30)); err != nil || seq != 31 {
		t.Fatalf("append after index rebuild: seq %d err %v, want 31 nil", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, IndexFile)); err != nil {
		t.Fatalf("index not rewritten: %v", err)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	frame, err := EncodeRecord(7, testEvent(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeRecord(frame[:len(frame)-1]); err != ErrTruncated {
		t.Fatalf("short frame: %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, _, _, err := DecodeRecord(bad); err == nil {
		t.Fatal("flipped payload byte decoded cleanly")
	}
	seq, ev, n, err := DecodeRecord(frame)
	if err != nil || seq != 7 || n != len(frame) {
		t.Fatalf("good frame: seq %d n %d err %v", seq, n, err)
	}
	if !reflect.DeepEqual(&ev, testEvent(1)) {
		t.Fatalf("decode mismatch: %+v", ev)
	}
}
