package feedback

import "repro/internal/obs"

// metrics is the feedback subsystem's metric set, registered beside the
// serving metrics on one obs.Registry so the process exposes a single
// /metrics namespace. Same eager-visibility rule as internal/serve: every
// series a dashboard would alert on exists at zero from process start.
type metrics struct {
	events   *obs.CounterVec // ingested events by result
	clicks   *obs.Counter    // events with at least one click
	queue    *obs.Gauge      // ingest queue depth
	logBytes *obs.Gauge
	logSegs  *obs.Gauge
	logRecs  *obs.Gauge
	appended *obs.Counter

	banditServed  *obs.CounterVec // requests served by a bandit arm
	banditPulls   *obs.CounterVec // rewarded pulls by arm
	banditReward  *obs.Counter    // cumulative reward (clicked events credited)
	banditUpdates *obs.Counter
	banditRegret  *obs.Gauge // estimated cumulative regret

	reestimates *obs.Counter
	published   *obs.Counter
	promotes    *obs.Counter
}

func newMetrics(r *obs.Registry) *metrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	m := &metrics{
		events: r.CounterVec("rapid_feedback_events_total",
			"Feedback events by ingest result: ok (correlated + logged), uncorrelated (unknown or evicted request id, still logged), error (append failed).", "result"),
		clicks: r.Counter("rapid_feedback_clicks_total",
			"Ingested feedback events carrying at least one click."),
		queue: r.Gauge("rapid_feedback_queue_depth",
			"Feedback events waiting in the bounded ingest queue."),
		logBytes: r.Gauge("rapid_feedback_log_bytes",
			"Bytes retained in the feedback event log across segments."),
		logSegs: r.Gauge("rapid_feedback_log_segments",
			"Segment files retained in the feedback event log."),
		logRecs: r.Gauge("rapid_feedback_log_records",
			"Event records retained in the feedback event log."),
		appended: r.Counter("rapid_feedback_appended_total",
			"Event records durably appended to the feedback log."),
		banditServed: r.CounterVec("rapid_bandit_served_total",
			"Requests served by a bandit λ arm, by arm label.", "arm"),
		banditPulls: r.CounterVec("rapid_bandit_pulls_total",
			"Feedback-rewarded bandit pulls, by arm label.", "arm"),
		banditReward: r.Counter("rapid_bandit_reward_total",
			"Cumulative bandit reward (feedback events with a click, credited to their arm)."),
		banditUpdates: r.Counter("rapid_bandit_updates_total",
			"Bandit policy updates applied from ingested feedback."),
		banditRegret: r.Gauge("rapid_bandit_estimated_regret",
			"Estimated cumulative bandit regret (sum of best-empirical-mean minus observed reward); sublinear growth means the policy is converging."),
		reestimates: r.Counter("rapid_feedback_reestimates_total",
			"Incremental click-model re-estimations completed by the trainer."),
		published: r.Counter("rapid_feedback_published_total",
			"Online-learned versions published to the registry by the trainer."),
		promotes: r.Counter("rapid_feedback_promotes_total",
			"Online-learned versions promoted to active after surviving canary."),
	}
	// Eager label creation so "no traffic" reads as zero, not as absence.
	m.events.With("ok")
	m.events.With("uncorrelated")
	m.events.With("error")
	return m
}
