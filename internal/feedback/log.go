package feedback

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options bounds a feedback log. The zero value of every field falls back
// to the listed default.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB): the active
	// segment rotates once it grows past this size.
	SegmentBytes int64
	// MaxSegments caps retained committed segments (default 64); beyond it
	// the oldest are deleted, bounding disk to ~MaxSegments·SegmentBytes.
	MaxSegments int
	// SyncEvery fsyncs the active segment after this many appends (default
	// 64). Rotation and Close always fsync: a committed segment is durable.
	// The window trades at most SyncEvery events to a power loss — a
	// process crash alone loses nothing the page cache has.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 64
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	return o
}

const (
	segPrefix = "seg-"
	segSuffix = ".flog"
	// IndexFile is the atomically committed segment manifest: rewritten via
	// temp-file + rename + directory fsync on every rotation (the same
	// commit discipline as registry.Publish), so it can never be observed
	// half-written. It is a cache — Open rebuilds the truth from the
	// segment files and self-heals a stale or missing index.
	IndexFile = "index.json"
)

// SegmentInfo describes one committed (rotated, fsynced) segment.
type SegmentInfo struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"first_seq"`
	Records  int64  `json:"records"`
	Bytes    int64  `json:"bytes"`
}

type indexFile struct {
	NextSeq  uint64        `json:"next_seq"`
	Segments []SegmentInfo `json:"segments"`
}

// Log is the bounded, crash-safe, segmented append-only event log. One
// writer (the ingest goroutine) appends under a mutex; readers replay the
// directory concurrently and see a committed prefix. Sequence numbers start
// at 1 and are dense within what is retained.
type Log struct {
	dir string
	opt Options

	mu            sync.Mutex
	f             *os.File
	activeName    string
	activeFirst   uint64
	activeBytes   int64
	activeRecords int64
	nextSeq       uint64
	sinceSync     int
	committed     []SegmentInfo
	closed        bool
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%012d%s", segPrefix, firstSeq, segSuffix)
}

// Open opens (or creates) the log in dir and recovers its tail: the newest
// segment is scanned record by record and truncated at the first torn or
// corrupt frame, so a kill -9 mid-write costs at most the partial record —
// everything before it replays byte-identically after restart.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: create log dir: %w", err)
	}
	l := &Log{dir: dir, opt: opt, nextSeq: 1}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	idx := readIndex(dir)
	byName := make(map[string]SegmentInfo, len(idx.Segments))
	for _, s := range idx.Segments {
		byName[s.Name] = s
	}
	for i, name := range names {
		if i == len(names)-1 {
			break // the newest segment is recovered below, not trusted
		}
		info, ok := byName[name]
		if !ok || info.Name == "" {
			// Crash between rotation and index write, or a foreign index:
			// rebuild this segment's entry from its bytes.
			info = scanSegment(dir, name)
		}
		l.committed = append(l.committed, info)
		if end := info.FirstSeq + uint64(info.Records); end > l.nextSeq {
			l.nextSeq = end
		}
	}
	if len(names) == 0 {
		if err := l.openSegment(l.nextSeq); err != nil {
			return nil, err
		}
		return l, l.writeIndex()
	}
	if err := l.recoverActive(names[len(names)-1]); err != nil {
		return nil, err
	}
	return l, l.writeIndex() // self-heal a stale index
}

// segmentNames lists the segment files, oldest first (zero-padded first-seq
// names sort lexicographically).
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("feedback: scan log dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment rebuilds a committed segment's info by decoding it.
func scanSegment(dir, name string) SegmentInfo {
	info := SegmentInfo{Name: name, FirstSeq: firstSeqOf(name)}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return info
	}
	info.Bytes = int64(len(data))
	for len(data) > 0 {
		seq, _, n, err := DecodeRecord(data)
		if err != nil {
			break
		}
		if info.Records == 0 {
			info.FirstSeq = seq
		}
		info.Records++
		data = data[n:]
	}
	return info
}

func firstSeqOf(name string) uint64 {
	var seq uint64
	_, _ = fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &seq)
	return seq
}

// recoverActive scans the newest segment, truncates a torn tail, and opens
// it for append.
func (l *Log) recoverActive(name string) error {
	path := filepath.Join(l.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("feedback: recover %s: %w", name, err)
	}
	l.activeName = name
	l.activeFirst = firstSeqOf(name)
	if l.activeFirst+1 > l.nextSeq { // empty active segment created at firstSeq
		l.nextSeq = l.activeFirst
	}
	good := 0
	rest := data
	for len(rest) > 0 {
		seq, _, n, err := DecodeRecord(rest)
		if err != nil {
			break // torn or corrupt tail: everything after is discarded
		}
		good += n
		l.activeRecords++
		l.nextSeq = seq + 1
		rest = rest[n:]
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: open active segment: %w", err)
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return fmt.Errorf("feedback: truncate torn tail of %s: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.activeBytes = int64(good)
	return nil
}

// openSegment creates a fresh active segment starting at firstSeq and makes
// its existence durable (directory fsync).
func (l *Log) openSegment(firstSeq uint64) error {
	name := segName(firstSeq)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: create segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.activeName = name
	l.activeFirst = firstSeq
	l.activeBytes = 0
	l.activeRecords = 0
	l.sinceSync = 0
	return nil
}

// Append frames and writes one event, stamping it with the next sequence
// number (returned). Rotation and the SyncEvery fsync cadence happen here.
func (l *Log) Append(ev *Event) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("feedback: log closed")
	}
	seq := l.nextSeq
	frame, err := EncodeRecord(seq, ev)
	if err != nil {
		return 0, err
	}
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("feedback: append: %w", err)
	}
	l.nextSeq++
	l.activeBytes += int64(len(frame))
	l.activeRecords++
	l.sinceSync++
	if l.sinceSync >= l.opt.SyncEvery {
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		l.sinceSync = 0
	}
	if l.activeBytes >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotateLocked commits the active segment: fsync, close, record it in the
// committed list, enforce the retention cap, rewrite the index atomically,
// open a fresh segment.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.committed = append(l.committed, SegmentInfo{
		Name: l.activeName, FirstSeq: l.activeFirst,
		Records: l.activeRecords, Bytes: l.activeBytes,
	})
	for len(l.committed) > l.opt.MaxSegments {
		old := l.committed[0]
		l.committed = l.committed[1:]
		if err := os.Remove(filepath.Join(l.dir, old.Name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("feedback: drop segment %s: %w", old.Name, err)
		}
	}
	if err := l.writeIndex(); err != nil {
		return err
	}
	return l.openSegment(l.nextSeq)
}

// writeIndex commits the segment manifest with the registry's staging
// discipline: temp file, fsync, rename, directory fsync.
func (l *Log) writeIndex() error {
	idx := indexFile{NextSeq: l.nextSeq, Segments: l.committed}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(l.dir, ".index-*")
	if err != nil {
		return fmt.Errorf("feedback: stage index: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(l.dir, IndexFile)); err != nil {
		return fmt.Errorf("feedback: commit index: %w", err)
	}
	return syncDir(l.dir)
}

func readIndex(dir string) indexFile {
	var idx indexFile
	data, err := os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		return idx
	}
	_ = json.Unmarshal(data, &idx) // corrupt index = no index; Open rebuilds
	return idx
}

// Sync forces the active segment to disk (used at clean shutdown and by
// tests asserting durability points).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.sinceSync = 0
	return l.f.Sync()
}

// Close fsyncs and closes the active segment and rewrites the index.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.writeIndex()
}

// Stats is a point-in-time view of the log's shape.
type Stats struct {
	Segments int    // committed + active
	Bytes    int64  // total retained bytes
	Records  int64  // total retained records
	NextSeq  uint64 // sequence number the next append will get
}

// Stat reports the log's current shape.
func (l *Log) Stat() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{Segments: len(l.committed) + 1, NextSeq: l.nextSeq}
	for _, s := range l.committed {
		st.Bytes += s.Bytes
		st.Records += s.Records
	}
	st.Bytes += l.activeBytes
	st.Records += l.activeRecords
	return st
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	Events  int64
	Corrupt int64 // records lost to mid-segment corruption
	// Truncated reports a torn tail on the newest segment — the expected
	// shape after a crash (or while a writer is appending), not an error.
	Truncated bool
	NextSeq   uint64 // 1 + the last sequence number seen
}

// Replay streams every retained event with seq >= fromSeq, oldest first,
// through fn. It reads the directory directly, so it works from any process
// — including concurrently with a live writer, in which case it observes a
// committed prefix (a partially written tail record reads as truncated,
// exactly like a crash). Corruption inside a non-newest segment skips the
// rest of that segment and is counted, never silently absorbed.
func Replay(dir string, fromSeq uint64, fn func(seq uint64, ev Event) error) (ReplayStats, error) {
	var st ReplayStats
	st.NextSeq = 1
	names, err := segmentNames(dir)
	if err != nil {
		return st, err
	}
	for i, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return st, fmt.Errorf("feedback: replay %s: %w", name, err)
		}
		last := i == len(names)-1
		for len(data) > 0 {
			seq, ev, n, derr := DecodeRecord(data)
			if derr != nil {
				if last {
					st.Truncated = true
				} else {
					st.Corrupt++
				}
				break
			}
			data = data[n:]
			if seq+1 > st.NextSeq {
				st.NextSeq = seq + 1
			}
			if seq < fromSeq {
				continue
			}
			if err := fn(seq, ev); err != nil {
				return st, err
			}
			st.Events++
		}
	}
	return st, nil
}

// syncDir fsyncs a directory so a rename or file creation in it survives a
// crash — the same durability discipline as registry.Publish.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("feedback: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("feedback: sync dir %s: %w", dir, err)
	}
	return nil
}

// nowMS is the event timestamp source, a hook for tests.
var nowMS = func() int64 { return time.Now().UnixMilli() }
