package feedback

import (
	"testing"
	"time"

	"repro/internal/bandit"
	"repro/internal/serve"
)

func testPolicy(t *testing.T) *bandit.Policy {
	t.Helper()
	p, err := bandit.NewPolicy(bandit.PolicyConfig{
		Arms:     []bandit.Arm{{Name: "mmr", Lambda: 0.2}, {Name: "mmr", Lambda: 0.8}},
		Segments: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// drain waits for the ingest goroutine to absorb everything submitted so far.
func drain(t *testing.T, in *Ingestor) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(in.ch) == 0 {
			// One more beat for the in-flight event past the channel read.
			time.Sleep(10 * time.Millisecond)
			if len(in.ch) == 0 {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("ingest queue never drained")
}

func TestIngestorCorrelatesAndLogs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol := testPolicy(t)
	in := NewIngestor(l, pol, IngestConfig{})
	armLabel := pol.Arms()[1].Label()
	in.Track("rid-1", 42, armLabel)
	in.Track("rid-2", 43, "v7") // non-arm version: logged, not credited

	if err := in.Submit(serve.FeedbackEvent{RequestID: "rid-1", Items: []int{1, 2, 3}, Clicks: []bool{true}}); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(serve.FeedbackEvent{RequestID: "rid-2", Items: []int{4, 5}}); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(serve.FeedbackEvent{RequestID: "rid-unknown", Items: []int{9}}); err != nil {
		t.Fatal(err)
	}
	drain(t, in)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	byID := map[string]Event{}
	if _, err := Replay(dir, 0, func(_ uint64, ev Event) error {
		byID[ev.RequestID] = ev
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(byID) != 3 {
		t.Fatalf("logged %d events, want 3", len(byID))
	}
	got := byID["rid-1"]
	if got.Route != 42 || got.Version != armLabel || got.Arm != 1 || got.Lambda != 0.8 {
		t.Fatalf("arm event not joined: %+v", got)
	}
	if !got.Clicked() || got.UnixMS == 0 {
		t.Fatalf("click/timestamp lost: %+v", got)
	}
	if ev := byID["rid-2"]; ev.Route != 43 || ev.Arm != -1 || ev.Version != "v7" {
		t.Fatalf("non-arm event mis-joined: %+v", ev)
	}
	if ev := byID["rid-unknown"]; ev.Route != 0 || ev.Arm != -1 {
		t.Fatalf("uncorrelated event must carry no route or arm: %+v", ev)
	}

	// The clicked arm event must have reached the policy.
	snap := pol.Snapshot()
	if snap.Updates != 1 || snap.Arms[1].Pulls != 1 || snap.Arms[1].Reward != 1 {
		t.Fatalf("policy not credited: %+v", snap)
	}
}

func TestIngestorBackpressure(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngestor(l, nil, IngestConfig{QueueSize: 1})
	// Saturate: with a queue of 1, repeated submits must eventually shed
	// rather than block (the ingest goroutine races the producer, so only the
	// error value — never blocking — is the contract under test).
	shed := false
	for i := 0; i < 10_000 && !shed; i++ {
		if err := in.Submit(serve.FeedbackEvent{RequestID: "r", Items: []int{1}}); err != nil {
			if err != serve.ErrFeedbackBusy {
				t.Fatalf("unexpected submit error: %v", err)
			}
			shed = true
		}
	}
	if !shed {
		t.Fatal("queue of 1 never shed under a 10k-submit burst")
	}
	drain(t, in)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackEviction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngestor(l, nil, IngestConfig{TrackCap: 2})
	in.Track("a", 1, "v1")
	in.Track("b", 2, "v1")
	in.Track("c", 3, "v1") // evicts a
	if err := in.Submit(serve.FeedbackEvent{RequestID: "a", Items: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(serve.FeedbackEvent{RequestID: "c", Items: []int{1}}); err != nil {
		t.Fatal(err)
	}
	drain(t, in)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	byID := map[string]Event{}
	if _, err := Replay(dir, 0, func(_ uint64, ev Event) error {
		byID[ev.RequestID] = ev
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ev := byID["a"]; ev.Route != 0 {
		t.Fatalf("evicted id must ingest uncorrelated, got %+v", ev)
	}
	if ev := byID["c"]; ev.Route != 3 {
		t.Fatalf("live id lost its correlation: %+v", ev)
	}
}
