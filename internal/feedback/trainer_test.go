package feedback

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/serve"
)

func testSurface() core.Config {
	return core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2,
		Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
}

// seedModelRoot commits one diversifier version so the trainer has a surface
// geometry to copy.
func seedModelRoot(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	man := serve.Manifest{
		Dataset: "test", Lambda: 0.9, Config: testSurface(),
		Diversifier: "mmr", DiversifierLambda: 0.5,
	}
	if _, err := registry.PublishDiversifier(root, "div-seed", man); err != nil {
		t.Fatal(err)
	}
	return root
}

// fakeLifecycle simulates the registry control plane: Load stages a
// candidate, every Versions poll credits it with canary traffic, Promote
// activates it. With rollback set, the candidate vanishes after Load —
// the auto-rollback shape the trainer must respect.
type fakeLifecycle struct {
	mu        sync.Mutex
	loads     []string
	promotes  []string
	candidate string
	requests  int64
	rollback  bool
}

func (f *fakeLifecycle) Versions() ([]serve.VersionStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := []serve.VersionStatus{{Version: "div-seed", State: "active", Requests: 100}}
	if f.candidate != "" {
		if f.rollback {
			out = append(out, serve.VersionStatus{Version: f.candidate, State: "available"})
		} else {
			f.requests += 2 // canary traffic arrives while the trainer watches
			out = append(out, serve.VersionStatus{Version: f.candidate, State: "candidate", Requests: f.requests})
		}
	}
	return out, nil
}

func (f *fakeLifecycle) Load(v string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads = append(f.loads, v)
	f.candidate, f.requests = v, 0
	return nil
}

func (f *fakeLifecycle) Promote(v string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.promotes = append(f.promotes, v)
	f.candidate = ""
	return nil
}

// writeArmEvents logs n events served by the given arm label, clicking a
// fraction of them.
func writeArmEvents(t *testing.T, l *Log, label string, arm, n int, clickEvery int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev := &Event{
			RequestID: "r", Route: uint64(i), Version: label, Arm: arm,
			UnixMS: int64(i), Items: []int{i, i + 1, i + 2},
		}
		if clickEvery > 0 && i%clickEvery == 0 {
			ev.Clicks = []bool{true}
		}
		if _, err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrainerPublishesBestArmAndPromotes(t *testing.T) {
	logDir := t.TempDir()
	l, err := Open(logDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Arm 1 (λ=0.80) clicks on every event, arm 0 on none: the replayed
	// tallies must make λ=0.80 the published choice.
	writeArmEvents(t, l, "bandit-mmr@0.20", 0, 10, 0)
	writeArmEvents(t, l, "bandit-mmr@0.80", 1, 10, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	root := seedModelRoot(t)
	lc := &fakeLifecycle{}
	tr, err := NewTrainer(TrainerConfig{
		LogDir: logDir, ModelRoot: root, Lifecycle: lc,
		MinEvents: 10, MinArmPulls: 5, PromoteAfter: 4,
		PromotePoll: 1, PromoteTimeout: 5_000_000_000, // 1ns poll, 5s timeout
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(lc.loads) != 1 || lc.loads[0] != "div-fb-1" {
		t.Fatalf("loads = %v, want [div-fb-1]", lc.loads)
	}
	if len(lc.promotes) != 1 || lc.promotes[0] != "div-fb-1" {
		t.Fatalf("promotes = %v, want [div-fb-1]", lc.promotes)
	}
	man, err := serve.ReadManifest(registry.ModelPath(root, "div-fb-1"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Diversifier != "mmr" || man.DiversifierLambda != 0.80 {
		t.Fatalf("published %s@%.2f, want mmr@0.80", man.Diversifier, man.DiversifierLambda)
	}
	if man.Config != testSurface() {
		t.Fatal("surface geometry not copied from the newest version")
	}
	if man.Metrics["feedback_sessions"] != 20 {
		t.Fatalf("manifest metrics %v, want 20 sessions", man.Metrics)
	}
	if tr.Incremental().Sessions() != 20 {
		t.Fatalf("incremental absorbed %d sessions, want 20", tr.Incremental().Sessions())
	}

	// No new events: the next step must not publish again.
	if err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(lc.loads) != 1 {
		t.Fatalf("idle step published: loads = %v", lc.loads)
	}
}

func TestTrainerCursorAcrossSteps(t *testing.T) {
	logDir := t.TempDir()
	l, err := Open(logDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeArmEvents(t, l, "bandit-mmr@0.80", 1, 12, 1)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	root := seedModelRoot(t)
	lc := &fakeLifecycle{}
	tr, err := NewTrainer(TrainerConfig{
		LogDir: logDir, ModelRoot: root, Lifecycle: lc,
		MinEvents: 10, MinArmPulls: 5, PromoteAfter: 2,
		PromotePoll: 1, Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	writeArmEvents(t, l, "bandit-mmr@0.80", 1, 12, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tr.Incremental().Sessions(); got != 24 {
		t.Fatalf("sessions after two steps = %d, want 24 (each event replayed once)", got)
	}
	if len(lc.loads) != 2 || lc.loads[1] != "div-fb-2" {
		t.Fatalf("loads = %v, want a second publish div-fb-2", lc.loads)
	}
	// Both versions exist on disk.
	for _, v := range []string{"div-fb-1", "div-fb-2"} {
		if _, err := os.Stat(filepath.Join(root, v)); err != nil {
			t.Fatalf("%s not committed: %v", v, err)
		}
	}
}

func TestTrainerRespectsRollback(t *testing.T) {
	logDir := t.TempDir()
	l, err := Open(logDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeArmEvents(t, l, "bandit-mmr@0.80", 1, 10, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	lc := &fakeLifecycle{rollback: true}
	tr, err := NewTrainer(TrainerConfig{
		LogDir: logDir, ModelRoot: seedModelRoot(t), Lifecycle: lc,
		MinEvents: 5, MinArmPulls: 5, PromoteAfter: 2,
		PromotePoll: 1, Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(lc.loads) != 1 {
		t.Fatalf("loads = %v, want one staged candidate", lc.loads)
	}
	if len(lc.promotes) != 0 {
		t.Fatalf("trainer promoted over a rollback: %v", lc.promotes)
	}
}
