package plot

import (
	"strings"
	"testing"
)

func TestWriteSVGBasics(t *testing.T) {
	c := &Chart{
		Title:  "Regret vs n",
		XLabel: "rounds",
		YLabel: "cumulative regret",
		Series: []Series{
			{Name: "UCB", X: []float64{0, 1, 2}, Y: []float64{0, 1, 1.5}},
			{Name: "greedy", X: []float64{0, 1, 2}, Y: []float64{0, 2, 3}},
		},
	}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "Regret vs n", "UCB", "greedy", "rounds", "cumulative regret"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("expected 2 polylines, got %d", got)
	}
}

func TestWriteSVGDeterministic(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}}}}
	var a, b strings.Builder
	if err := c.WriteSVG(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SVG output not deterministic")
	}
}

func TestWriteSVGDegenerate(t *testing.T) {
	// Empty chart and constant series must not divide by zero.
	for _, c := range []*Chart{
		{},
		{Series: []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{2, 2}}}},
	} {
		var sb strings.Builder
		if err := c.WriteSVG(&sb); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(sb.String(), "NaN") || strings.Contains(sb.String(), "Inf") {
			t.Fatal("degenerate chart produced NaN/Inf coordinates")
		}
	}
}

func TestEscape(t *testing.T) {
	c := &Chart{Title: "a < b & c > d"}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a &lt; b &amp; c &gt; d") {
		t.Fatal("title not escaped")
	}
}
