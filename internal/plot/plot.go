// Package plot renders simple line charts as SVG — enough to emit the
// paper's figure-style outputs (regret curves, hyper-parameter sweeps)
// without any dependency. The output is deterministic for fixed input.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a titled collection of series on shared axes.
type Chart struct {
	Title          string
	XLabel, YLabel string
	Series         []Series
	// Width and Height default to 640×400 when zero.
	Width, Height int
}

// palette holds the line colors, cycled by series index.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	const (
		marginL = 64
		marginR = 140
		marginT = 40
		marginB = 48
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xmin, xmax, ymin, ymax := c.bounds()
	sx := func(x float64) float64 {
		if xmax == xmin {
			return marginL + plotW/2
		}
		return marginL + (x-xmin)/(xmax-xmin)*plotW
	}
	sy := func(y float64) float64 {
		if ymax == ymin {
			return marginT + plotH/2
		}
		return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+int(plotH), marginL+int(plotW), marginT+int(plotH))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+int(plotH))
	// Ticks.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		px := sx(fx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, marginT+int(plotH), px, marginT+int(plotH)+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, marginT+int(plotH)+20, tick(fx))
		fy := ymin + (ymax-ymin)*float64(i)/4
		py := sy(fy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, py, marginL, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, py+4, tick(fy))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, height-8, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))
	}
	// Series and legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+int(plotW)+10, ly+6, marginL+int(plotW)+34, ly+6, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL+int(plotW)+38, ly+10, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds computes the data extents across all series, padding degenerate
// ranges so scaling stays finite.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) { // no data at all
		return 0, 1, 0, 1
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	return xmin, xmax, ymin, ymax
}

func tick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
