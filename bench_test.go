// Benchmarks regenerating every table and figure of the paper at a reduced
// scale (the CLI `rapidbench -exp <id> -scale 1` runs the full harness
// size). One benchmark iteration runs the complete experiment — dataset
// generation, initial-ranker training, click simulation, re-ranker
// training, evaluation — so b.N is typically 1; the reported time is the
// end-to-end cost of the experiment.
//
// Micro-benchmarks for the hot paths (matrix multiply, LSTM step, DPP
// greedy MAP, coverage) live at the bottom.
package rapid

import (
	"math/rand"
	"testing"

	"repro/internal/bandit"
	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
	"repro/internal/topics"
)

// benchScale keeps one experiment iteration in the tens of seconds.
const benchScale = 0.08

func benchOptions(seed int64) experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Scale = benchScale
	opt.Seed = seed
	opt.Epochs = 4
	return opt
}

func runTables(b *testing.B, f func(opt experiments.Options) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := f(benchOptions(int64(42 + i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2a — Table II(a): overall performance at λ=0.5.
func BenchmarkTable2a(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable2(0.5, opt)
		return err
	})
}

// BenchmarkTable2b — Table II(b): overall performance at λ=0.9.
func BenchmarkTable2b(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable2(0.9, opt)
		return err
	})
}

// BenchmarkTable2c — Table II(c): overall performance at λ=1.0.
func BenchmarkTable2c(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable2(1.0, opt)
		return err
	})
}

// BenchmarkTable3 — Table III: App Store with revenue metrics.
func BenchmarkTable3(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable3(opt)
		return err
	})
}

// BenchmarkTable4 — Table IV: SVMRank and LambdaMART initial rankers.
func BenchmarkTable4(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable4(opt)
		return err
	})
}

// BenchmarkTable5 — Table V: behavior-sequence lengths D ∈ {3,5,10}.
func BenchmarkTable5(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable5(opt)
		return err
	})
}

// BenchmarkTable6 — Table VI: training/inference wall-clock comparison.
func BenchmarkTable6(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable6(opt)
		return err
	})
}

// BenchmarkFig3 — Figure 3: ablation variants.
func BenchmarkFig3(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunFig3(opt)
		return err
	})
}

// BenchmarkFig4 — Figure 4: hidden-size sweep.
func BenchmarkFig4(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunFig4(opt)
		return err
	})
}

// BenchmarkFig5 — Figure 5: personalized-preference case study.
func BenchmarkFig5(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunFig5(opt)
		return err
	})
}

// BenchmarkDivFn — extension: RAPID under alternative submodular
// diversity functions (the paper's Section III-C remark).
func BenchmarkDivFn(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunDivFnAblation(opt)
		return err
	})
}

// BenchmarkRobust — extension: DCM-trained models evaluated under a PBM.
func BenchmarkRobust(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunRobustness(opt)
		return err
	})
}

// BenchmarkRegret — Theorem 5.1: Õ(√n) regret simulation (UCB variant).
func BenchmarkRegret(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := bandit.NewEnv(6, 4, 4, 20, 80, 15, int64(7+i))
		bandit.SimulateRegret(env, bandit.UCB, 800, 100, 0.1)
	}
}

// ---- Micro-benchmarks for hot paths ----

func BenchmarkMatMul32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := mat.RandNormal(32, 32, 0, 1, rng)
	y := mat.RandNormal(32, 32, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}

func BenchmarkLSTMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ps := nn.NewParamSet()
	cell := nn.NewLSTMCell(ps, "c", 24, 16, rng)
	x := mat.RandNormal(1, 24, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := nn.NewTape()
		h, c := cell.InitState(t)
		cell.Step(t, t.Constant(x), h, c)
	}
}

func BenchmarkBiLSTMList20(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ps := nn.NewParamSet()
	bi := nn.NewBiLSTM(ps, "b", 30, 16, rng)
	seq := mat.RandNormal(20, 30, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := nn.NewTape()
		bi.Forward(t, t.Constant(seq))
	}
}

func BenchmarkRAPIDInference(b *testing.B) {
	// One full RAPID forward pass over a 20-item list — the quantity the
	// paper's efficiency analysis (Section V-B) bounds by ~50 ms.
	cfg := dataset.TaobaoLike(1).Scaled(0.05)
	d := dataset.MustGenerate(cfg)
	opt := benchOptions(1)
	rng := rand.New(rand.NewSource(4))
	pool := d.RerankPools[0]
	items := pool.Candidates[:cfg.ListLen]
	scores := make([]float64, len(items))
	req := dataset.Request{User: pool.User, Items: items, InitScores: scores}
	inst := rerank.NewInstance(d, req, rng)
	env := &experiments.Env{Data: d}
	m := experiments.NewRAPID(env, opt, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scores(inst)
	}
}

func BenchmarkDPPGreedyMAP(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	base := mat.RandNormal(20, 8, 0, 1, rng)
	kernel := base.MatMul(base.T())
	for i := 0; i < 20; i++ {
		kernel.Set(i, i, kernel.At(i, i)+0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.GreedyMAP(kernel, 10)
	}
}

func BenchmarkMarginalDiversity(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	cover := make([][]float64, 20)
	for i := range cover {
		c := make([]float64, 20)
		for j := range c {
			c[j] = rng.Float64() * 0.3
		}
		cover[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkMD = topics.MarginalDiversity(cover, 20)
	}
}

var benchSinkMD [][]float64
