// Benchmarks regenerating every table and figure of the paper at a reduced
// scale (the CLI `rapidbench -exp <id> -scale 1` runs the full harness
// size). One benchmark iteration runs the complete experiment — dataset
// generation, initial-ranker training, click simulation, re-ranker
// training, evaluation — so b.N is typically 1; the reported time is the
// end-to-end cost of the experiment.
//
// Micro-benchmarks for the hot paths (matrix multiply, LSTM step, DPP
// greedy MAP, coverage) live at the bottom.
package rapid

import (
	"testing"

	"repro/internal/bandit"
	"repro/internal/benchsuite"
	"repro/internal/experiments"
)

// benchScale keeps one experiment iteration in the tens of seconds.
const benchScale = 0.08

func benchOptions(seed int64) experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Scale = benchScale
	opt.Seed = seed
	opt.Epochs = 4
	return opt
}

func runTables(b *testing.B, f func(opt experiments.Options) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := f(benchOptions(int64(42 + i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2a — Table II(a): overall performance at λ=0.5.
func BenchmarkTable2a(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable2(0.5, opt)
		return err
	})
}

// BenchmarkTable2b — Table II(b): overall performance at λ=0.9.
func BenchmarkTable2b(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable2(0.9, opt)
		return err
	})
}

// BenchmarkTable2c — Table II(c): overall performance at λ=1.0.
func BenchmarkTable2c(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable2(1.0, opt)
		return err
	})
}

// BenchmarkTable3 — Table III: App Store with revenue metrics.
func BenchmarkTable3(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable3(opt)
		return err
	})
}

// BenchmarkTable4 — Table IV: SVMRank and LambdaMART initial rankers.
func BenchmarkTable4(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable4(opt)
		return err
	})
}

// BenchmarkTable5 — Table V: behavior-sequence lengths D ∈ {3,5,10}.
func BenchmarkTable5(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable5(opt)
		return err
	})
}

// BenchmarkTable6 — Table VI: training/inference wall-clock comparison.
func BenchmarkTable6(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunTable6(opt)
		return err
	})
}

// BenchmarkFig3 — Figure 3: ablation variants.
func BenchmarkFig3(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunFig3(opt)
		return err
	})
}

// BenchmarkFig4 — Figure 4: hidden-size sweep.
func BenchmarkFig4(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunFig4(opt)
		return err
	})
}

// BenchmarkFig5 — Figure 5: personalized-preference case study.
func BenchmarkFig5(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunFig5(opt)
		return err
	})
}

// BenchmarkDivFn — extension: RAPID under alternative submodular
// diversity functions (the paper's Section III-C remark).
func BenchmarkDivFn(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunDivFnAblation(opt)
		return err
	})
}

// BenchmarkRobust — extension: DCM-trained models evaluated under a PBM.
func BenchmarkRobust(b *testing.B) {
	runTables(b, func(opt experiments.Options) error {
		_, err := experiments.RunRobustness(opt)
		return err
	})
}

// BenchmarkRegret — Theorem 5.1: Õ(√n) regret simulation (UCB variant).
func BenchmarkRegret(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := bandit.NewEnv(6, 4, 4, 20, 80, 15, int64(7+i))
		bandit.SimulateRegret(env, bandit.UCB, 800, 100, 0.1)
	}
}

// ---- Micro-benchmarks for hot paths ----
//
// The bodies live in internal/benchsuite so `rapidbench -benchjson` (which
// writes BENCH_PR2.json) runs exactly the same code.

func BenchmarkMatMul32(b *testing.B) { benchsuite.MatMul32(b) }

func BenchmarkLSTMStep(b *testing.B) { benchsuite.LSTMStep(b) }

func BenchmarkBiLSTMList20(b *testing.B) { benchsuite.BiLSTMList20(b) }

func BenchmarkRAPIDInference(b *testing.B) { benchsuite.RAPIDInference(b) }

// Batched inference: the same 20-item geometry scored through ScoreBatch at
// batch sizes 1, 4 and 16. Compare by the reported instances/s; rapidbench
// -batchjson writes the same numbers to BENCH_PR5.json.
func BenchmarkRAPIDInferenceBatch1(b *testing.B) { benchsuite.RAPIDInferenceBatch1(b) }

func BenchmarkRAPIDInferenceBatch4(b *testing.B) { benchsuite.RAPIDInferenceBatch4(b) }

func BenchmarkRAPIDInferenceBatch16(b *testing.B) { benchsuite.RAPIDInferenceBatch16(b) }

func BenchmarkDPPGreedyMAP(b *testing.B) { benchsuite.DPPGreedyMAP(b) }

func BenchmarkMarginalDiversity(b *testing.B) { benchsuite.MarginalDiversity(b) }

// BenchmarkTrainListwise — end-to-end RAPID-pro training over a fixed
// synthetic set, the target of the data-parallel trainer refactor. Reports
// train-instances/sec alongside ns/op.
func BenchmarkTrainListwise(b *testing.B) { benchsuite.TrainListwise(b) }
