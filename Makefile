# Repo-wide checks. `make check` is the CI gate: vet + formatting + tests.
GO ?= go

.PHONY: check build vet fmt test test-short race fuzz smoke chaos-smoke diversify-smoke feedback-smoke bench bench-json bench-batch bench-batch-smoke bench-pr7 bench-pr7-smoke bench-pr9 bench-pr10 bench-pr10-smoke

check: vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; any output fails the target.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full suite under the race detector (slow; the serving and training layers
# are concurrent and must stay race-clean).
race:
	$(GO) test -race ./...

# Fuzz smoke: run each wire-level fuzz target for a short burst on top of
# its committed seed corpus (testdata/fuzz). CI runs this; longer local
# sessions just raise FUZZTIME.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzRerankRequest -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run=^$$ -fuzz=FuzzManifest -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run=^$$ -fuzz=FuzzDiversifierAdapter -fuzztime=$(FUZZTIME) ./internal/diversify
	$(GO) test -run=^$$ -fuzz=FuzzFeedbackEvent -fuzztime=$(FUZZTIME) ./internal/feedback
	$(GO) test -run=^$$ -fuzz=FuzzBinaryFrame -fuzztime=$(FUZZTIME) ./internal/serve/binproto

# Model-lifecycle smoke: trains two tiny models, publishes them into a
# versioned store, serves it with rapidserve -model-root and drives a
# load → promote → rollback cycle through the admin API, asserting the
# per-version /metrics series. The end-to-end check of internal/registry
# through the real binaries.
smoke:
	./scripts/lifecycle_smoke.sh

# Fleet chaos smoke: three registry-mode replicas (one 10x slow, distinct
# model versions across stores) behind rapidrouter, with a kill -9 + restart
# mid-load. Asserts zero dropped requests, version-skew detection, retry and
# hedge accounting, and writes hedged/unhedged latency percentiles to
# BENCH_PR6.json. The end-to-end check of internal/router through the real
# binaries.
chaos-smoke:
	./scripts/router_chaos_smoke.sh

# Diversifier-suite smoke: publishes the four classic diversifiers as
# weightless versions beside a trained RAPID model, then canaries each one
# behind /v1/rerank with shadow comparison on, asserting the per-diversifier
# rapid_diversifier_* series. The end-to-end check of internal/diversify's
# serving seam through the real binaries.
diversify-smoke:
	./scripts/diversify_smoke.sh

# Feedback-loop smoke: serves with the event log and a bandit λ slice on,
# drives DCM-simulated clicks into /v1/feedback, kill -9s the server
# mid-traffic, then runs the rapidfeed trainer against the live admin API
# until an online-learned div-fb-* version is canaried and promoted.
# Asserts zero dropped requests, the rapid_feedback_*/rapid_bandit_* series,
# a byte-identical log prefix across the crash, and incremental ≡ batch
# re-estimation on the replayed log. The end-to-end check of
# internal/feedback through the real binaries.
feedback-smoke:
	./scripts/feedback_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable perf snapshot: runs the shared benchmark suite
# (internal/benchsuite) and writes current numbers next to the committed
# pre-change baseline. Slow — includes a full Table II(a) experiment.
bench-json:
	$(GO) run ./cmd/rapidbench -benchjson BENCH_PR2.json

# Batched-inference perf snapshot: single-request vs ScoreBatch at batch
# sizes 1/4/16, written next to the committed pre-change baseline.
bench-batch:
	$(GO) run ./cmd/rapidbench -batchjson BENCH_PR5.json

# CI gate: runs only the single-request and batch-16 benchmarks and fails
# on a >10% single-request latency regression or <2x batch-16 throughput
# against the committed baseline.
bench-batch-smoke:
	$(GO) run ./cmd/rapidbench -batchjson BENCH_PR5.json -smoke -check

# Parallel-GEMM and user-state-cache perf snapshot: serial vs parallel
# MatMulInto at 32/128/256/384 plus cold vs warm batch-16 state scoring,
# written next to the committed pre-change baseline. The speedup gates are
# machine-aware: parallel wins are only required when GOMAXPROCS > 1.
bench-pr7:
	$(GO) run ./cmd/rapidbench -pr7json BENCH_PR7.json

# CI gate: the GEMM32/GEMM256 and cold/warm entries only, failing on a
# below-cutoff dispatch tax, serial-kernel drift, a missing parallel win on
# multi-core machines, or a warm path that does not beat cold.
bench-pr7-smoke:
	$(GO) run ./cmd/rapidbench -pr7json BENCH_PR7.json -smoke -check

# Bandit regret study: simulates the serving-path λ policy against every
# fixed-λ ablation over a segment-heterogeneous reward environment and
# writes the committed report. Fails if the policy's fitted regret exponent
# is not sublinear.
bench-pr9:
	$(GO) run ./cmd/rapidfeed -regretjson BENCH_PR9.json

# Frontend comparison snapshot: the JSON and binary codecs plus full
# round trips through both frontends against one shared engine, with
# bitwise score parity asserted before timing starts.
bench-pr10:
	$(GO) run ./cmd/rapidbench -pr10json BENCH_PR10.json

# CI gate: same run at one repetition, failing unless the binary path
# allocates strictly less per request than JSON (codec and round trip) and
# score parity holds.
bench-pr10-smoke:
	$(GO) run ./cmd/rapidbench -pr10json BENCH_PR10.json -smoke -check
