package rapid_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	rapid "repro"
)

// handInstance builds a 4-item re-ranking instance by hand: two "news"
// items, one "sports", one "music", with descending initial scores. No
// dataset or training is involved, so the output is fully deterministic.
func handInstance() *rapid.Instance {
	itemFeat := map[int][]float64{
		1: {0.9, 0.1}, 2: {0.8, 0.2}, 3: {0.1, 0.9}, 4: {0.5, 0.5},
	}
	cover := map[int][]float64{
		1: {1, 0, 0}, // news
		2: {1, 0, 0}, // news
		3: {0, 1, 0}, // sports
		4: {0, 0, 1}, // music
	}
	return &rapid.Instance{
		User:       7,
		UserFeat:   []float64{0.3, 0.7},
		Items:      []int{1, 2, 3, 4},
		InitScores: []float64{0.9, 0.8, 0.5, 0.4},
		Cover:      [][]float64{cover[1], cover[2], cover[3], cover[4]},
		History:    []int{1, 3, 4},
		TopicSeqs:  [][]int{{1}, {3}, {4}},
		M:          3,
		ItemFeat:   func(v int) []float64 { return itemFeat[v] },
		CoverOf:    func(v int) []float64 { return cover[v] },
	}
}

// ExampleApply re-ranks with MMR: the duplicate "news" item is demoted in
// favor of the novel topics.
func ExampleApply() {
	inst := handInstance()
	mmr := rapid.NewMMR()
	mmr.Theta = 0.5
	fmt.Println("initial:", inst.Items)
	fmt.Println("MMR:    ", rapid.Apply(mmr, inst))
	// Output:
	// initial: [1 2 3 4]
	// MMR:     [1 3 4 2]
}

// ExampleNewDPP shows greedy MAP inference selecting a diverse prefix.
func ExampleNewDPP() {
	inst := handInstance()
	order := rapid.Apply(rapid.NewDPP(), inst)
	// The three distinct topics come before the duplicate news item.
	fmt.Println(order[3])
	// Output:
	// 2
}

// ExampleNewServer serves an untrained model over the v1 HTTP API. The
// functional options set the scoring deadline and the micro-batching
// window; concurrent requests would coalesce into one batched forward
// pass, while this lone request rides the idle fast path.
func ExampleNewServer() {
	model := rapid.NewModel(rapid.DefaultModelConfig(2, 2, 3, 7))
	srv := rapid.NewServer(model,
		rapid.WithDeadline(50*time.Millisecond),
		rapid.WithBatching(16, 2*time.Millisecond))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := rapid.RerankRequest{
		UserFeatures: []float64{0.3, 0.7},
		Items: []rapid.RerankItem{
			{ID: 1, Features: []float64{0.9, 0.1}, Cover: []float64{1, 0, 0}, InitScore: 0.9},
			{ID: 2, Features: []float64{0.8, 0.2}, Cover: []float64{1, 0, 0}, InitScore: 0.8},
			{ID: 3, Features: []float64{0.1, 0.9}, Cover: []float64{0, 1, 0}, InitScore: 0.5},
			{ID: 4, Features: []float64{0.5, 0.5}, Cover: []float64{0, 0, 1}, InitScore: 0.4},
		},
		TopicSequences: [][]rapid.SeqItemWire{
			{{Features: []float64{0.9, 0.1}}},
			{{Features: []float64{0.1, 0.9}}},
			{{Features: []float64{0.5, 0.5}}},
		},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/rerank", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var out rapid.RerankResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	fmt.Println("ranked:", out.Ranked)
	// Output:
	// ranked: [3 2 4 1]
}

// ExampleClickAtK computes the utility metric from expected clicks.
func ExampleClickAtK() {
	exp := []float64{0.5, 0.3, 0.2}
	fmt.Printf("%.1f\n", rapid.ClickAtK(exp, 2))
	// Output:
	// 0.8
}

// ExampleInstance_HistoryPreference derives the empirical topic preference
// a heuristic like adpMMR would use.
func ExampleInstance_HistoryPreference() {
	inst := handInstance()
	pref := inst.HistoryPreference()
	fmt.Printf("%.2f %.2f %.2f\n", pref[0], pref[1], pref[2])
	// Output:
	// 0.33 0.33 0.33
}
