package rapid_test

import (
	"fmt"

	rapid "repro"
)

// handInstance builds a 4-item re-ranking instance by hand: two "news"
// items, one "sports", one "music", with descending initial scores. No
// dataset or training is involved, so the output is fully deterministic.
func handInstance() *rapid.Instance {
	itemFeat := map[int][]float64{
		1: {0.9, 0.1}, 2: {0.8, 0.2}, 3: {0.1, 0.9}, 4: {0.5, 0.5},
	}
	cover := map[int][]float64{
		1: {1, 0, 0}, // news
		2: {1, 0, 0}, // news
		3: {0, 1, 0}, // sports
		4: {0, 0, 1}, // music
	}
	return &rapid.Instance{
		User:       7,
		UserFeat:   []float64{0.3, 0.7},
		Items:      []int{1, 2, 3, 4},
		InitScores: []float64{0.9, 0.8, 0.5, 0.4},
		Cover:      [][]float64{cover[1], cover[2], cover[3], cover[4]},
		History:    []int{1, 3, 4},
		TopicSeqs:  [][]int{{1}, {3}, {4}},
		M:          3,
		ItemFeat:   func(v int) []float64 { return itemFeat[v] },
		CoverOf:    func(v int) []float64 { return cover[v] },
	}
}

// ExampleApply re-ranks with MMR: the duplicate "news" item is demoted in
// favor of the novel topics.
func ExampleApply() {
	inst := handInstance()
	mmr := rapid.NewMMR()
	mmr.Theta = 0.5
	fmt.Println("initial:", inst.Items)
	fmt.Println("MMR:    ", rapid.Apply(mmr, inst))
	// Output:
	// initial: [1 2 3 4]
	// MMR:     [1 3 4 2]
}

// ExampleNewDPP shows greedy MAP inference selecting a diverse prefix.
func ExampleNewDPP() {
	inst := handInstance()
	order := rapid.Apply(rapid.NewDPP(), inst)
	// The three distinct topics come before the duplicate news item.
	fmt.Println(order[3])
	// Output:
	// 2
}

// ExampleClickAtK computes the utility metric from expected clicks.
func ExampleClickAtK() {
	exp := []float64{0.5, 0.3, 0.2}
	fmt.Printf("%.1f\n", rapid.ClickAtK(exp, 2))
	// Output:
	// 0.8
}

// ExampleInstance_HistoryPreference derives the empirical topic preference
// a heuristic like adpMMR would use.
func ExampleInstance_HistoryPreference() {
	inst := handInstance()
	pref := inst.HistoryPreference()
	fmt.Printf("%.2f %.2f %.2f\n", pref[0], pref[1], pref[2])
	// Output:
	// 0.33 0.33 0.33
}
