package rapid

import (
	"net"
	"time"

	"repro/internal/serve"
)

// Serving (internal/serve). NewServer wraps a trained model in the hardened
// HTTP serving layer — deadline/degradation envelope, micro-batched scoring
// and the versioned v1 endpoints (POST /v1/rerank, POST /v1/rerank:batch,
// with POST /rerank kept as an alias).
type (
	// Server is the hardened re-ranking HTTP server.
	Server = serve.Server
	// Scorer is the context-aware scoring interface the server accepts.
	Scorer = serve.Scorer
	// BatchScorer is the optional batched extension of Scorer.
	BatchScorer = serve.BatchScorer
	// RerankRequest is the wire form of one re-ranking request.
	RerankRequest = serve.RerankRequest
	// RerankItem is one candidate item on the wire.
	RerankItem = serve.RerankItem
	// SeqItemWire is one behavior-sequence item on the wire.
	SeqItemWire = serve.SeqItemWire
	// RerankResponse is the wire form of one re-ranking response.
	RerankResponse = serve.RerankResponse
	// RerankBatchRequest is the /v1/rerank:batch envelope.
	RerankBatchRequest = serve.RerankBatchRequest
	// RerankBatchResponse answers a batch envelope item by item.
	RerankBatchResponse = serve.RerankBatchResponse
)

// AdaptReranker lifts a legacy Reranker (its Scores method has no context)
// into the context-aware Scorer interface, including a sequential
// ScoreBatch. RAPID models implement Scorer natively and do not need it.
func AdaptReranker(r Reranker) Scorer { return serve.Adapt(r) }

// serverOptions collects what the functional options below configure.
type serverOptions struct {
	cfg     serve.Config
	dataset string
	tenants map[string]*Model
}

// ServerOption configures NewServer.
type ServerOption func(*serverOptions)

// WithDeadline sets the per-request scoring budget; on overrun the response
// degrades to the initial ordering instead of failing (default 50ms).
func WithDeadline(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.cfg.Budget = d }
}

// WithBatching bounds the micro-batching coalescer: at most maxBatch
// concurrent requests are scored in one batched forward pass, and no
// request waits more than maxWait for batch-mates (defaults 16, 2ms).
// maxBatch 1 disables coalescing.
func WithBatching(maxBatch int, maxWait time.Duration) ServerOption {
	return func(o *serverOptions) {
		o.cfg.Batch.MaxBatch = maxBatch
		o.cfg.Batch.MaxWait = maxWait
	}
}

// WithBatchWorkers sets the number of scoring workers draining batches
// (default max(2, GOMAXPROCS)).
func WithBatchWorkers(n int) ServerOption {
	return func(o *serverOptions) { o.cfg.Batch.Workers = n }
}

// WithMaxInFlight bounds concurrently executing scoring passes (default
// 4×GOMAXPROCS).
func WithMaxInFlight(n int) ServerOption {
	return func(o *serverOptions) { o.cfg.MaxInFlight = n }
}

// WithQueueWait bounds how long an admitted request may wait for a scoring
// slot before it is shed with 429 (default 10ms).
func WithQueueWait(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.cfg.QueueWait = d }
}

// WithMaxBodyBytes caps the request body size (default 8 MiB).
func WithMaxBodyBytes(n int64) ServerOption {
	return func(o *serverOptions) { o.cfg.MaxBodyBytes = n }
}

// WithDrainTimeout bounds graceful shutdown (default 10s).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.cfg.DrainTimeout = d }
}

// WithDataset labels the served model's dataset in /healthz and logs
// (default "custom").
func WithDataset(name string) ServerOption {
	return func(o *serverOptions) { o.dataset = name }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ (opt-in; profiling
// endpoints expose heap contents).
func WithPprof() ServerOption {
	return func(o *serverOptions) { o.cfg.Pprof = true }
}

// WithTenant keeps an additional named model resident alongside the primary
// one. Requests naming it in their "tenant" field score against it; requests
// with no tenant keep scoring against the primary model, so adding tenants
// never changes existing callers.
//
//	srv := rapid.NewServer(model, rapid.WithTenant("acme", acmeModel))
func WithTenant(name string, model *Model) ServerOption {
	return func(o *serverOptions) {
		if o.tenants == nil {
			o.tenants = make(map[string]*Model)
		}
		o.tenants[name] = model
	}
}

// WithBinaryListener additionally serves the fleet-internal binary protocol
// (internal/serve/binproto) on ln, backed by the same engine as the HTTP
// routes: same models, limits and metrics, bitwise-identical scores.
func WithBinaryListener(ln net.Listener) ServerOption {
	return func(o *serverOptions) { o.cfg.BinaryListener = ln }
}

// NewServer wraps a RAPID model in the serving layer. The model scores
// through the batched inference engine: concurrent requests coalesce into
// one forward pass whose per-step GEMMs carry all batch members at once.
//
//	srv := rapid.NewServer(model,
//	    rapid.WithDeadline(50*time.Millisecond),
//	    rapid.WithBatching(16, 2*time.Millisecond))
//	http.ListenAndServe(":8080", srv.Handler())
func NewServer(model *Model, opts ...ServerOption) *Server {
	o := serverOptions{dataset: "custom"}
	for _, opt := range opts {
		opt(&o)
	}
	man := serve.Manifest{Dataset: o.dataset, Config: model.Cfg}
	if len(o.tenants) > 0 {
		tenants := make(serve.StaticTenants, len(o.tenants))
		for name, m := range o.tenants {
			tenants[name] = serve.StaticProvider(serve.Pinned{
				Scorer:   m,
				Manifest: serve.Manifest{Dataset: o.dataset + "/" + name, Config: m.Cfg},
			})
		}
		o.cfg.Tenants = tenants
	}
	return serve.NewServer(model, man, o.cfg)
}
