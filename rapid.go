// Package rapid is the public API of this reproduction of "Personalized
// Diversification for Neural Re-ranking in Recommendation" (ICDE 2023).
// It re-exports the RAPID model, the dataset generators, the DCM click
// environment, the baselines roster and the experiment drivers, so that
// applications (see examples/) can be written against one import.
//
// Typical use:
//
//	cfg := rapid.MovieLensLike(7)
//	rd, _ := rapid.BuildRankedData(cfg, rapid.NewDIN(7), rapid.DefaultOptions())
//	env := rapid.BuildEnv(rd, 0.9, rapid.DefaultOptions())
//	model := rapid.NewModel(rapid.DefaultModelConfig(cfg.UserDim, cfg.ItemDim, cfg.Topics, 7))
//	_ = model.Fit(env.Train)
//	ranked := rapid.Apply(model, env.Test[0])
package rapid

import (
	"repro/internal/bandit"
	"repro/internal/baselines"
	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/ranker"
	"repro/internal/rerank"
)

// Model construction (internal/core).
type (
	// Model is the RAPID re-ranker.
	Model = core.Model
	// ModelConfig parameterizes a RAPID model.
	ModelConfig = core.Config
	// OutputMode selects deterministic (Eq. 7) vs probabilistic (Eqs.
	// 8–10) scoring.
	OutputMode = core.OutputMode
)

// Output modes and ablation selectors.
const (
	Deterministic      = core.Deterministic
	Probabilistic      = core.Probabilistic
	BiLSTMEncoder      = core.BiLSTMEncoder
	TransformerEncoder = core.TransformerEncoder
	LSTMAgg            = core.LSTMAgg
	MeanAgg            = core.MeanAgg
)

// NewModel builds a RAPID model.
func NewModel(cfg ModelConfig) *Model { return core.New(cfg) }

// DefaultModelConfig mirrors the paper's chosen hyper-parameters.
func DefaultModelConfig(userDim, itemDim, topics int, seed int64) ModelConfig {
	return core.DefaultConfig(userDim, itemDim, topics, seed)
}

// Re-ranking abstractions (internal/rerank).
type (
	// Reranker scores the items of an instance.
	Reranker = rerank.Reranker
	// Trainable is a re-ranker that learns from labeled instances.
	Trainable = rerank.Trainable
	// Instance is one re-ranking request.
	Instance = rerank.Instance
	// TrainConfig tunes the shared neural training loop.
	TrainConfig = rerank.TrainConfig
)

// Apply returns inst's items reordered by r, best first.
func Apply(r Reranker, inst *Instance) []int { return rerank.Apply(r, inst) }

// NewInstance assembles a re-ranking instance from a dataset request.
var NewInstance = rerank.NewInstance

// Datasets (internal/dataset).
type (
	// DataConfig controls synthetic dataset generation.
	DataConfig = dataset.Config
	// Data is a generated universe with its splits.
	Data = dataset.Dataset
	// Request is a prepared re-ranking request.
	Request = dataset.Request
)

// Dataset presets and generation.
var (
	TaobaoLike    = dataset.TaobaoLike
	MovieLensLike = dataset.MovieLensLike
	AppStoreLike  = dataset.AppStoreLike
	GenerateData  = dataset.Generate
)

// Initial rankers (internal/ranker).
type (
	// Ranker is an initial (pre-re-ranking) scoring model.
	Ranker = ranker.Ranker
)

// Initial-ranker constructors.
var (
	NewDIN        = ranker.NewDIN
	NewSVMRank    = ranker.NewSVMRank
	NewLambdaMART = ranker.NewLambdaMART
)

// Click environment (internal/clickmodel).
type (
	// DCM is the dependent click model environment.
	DCM = clickmodel.DCM
	// PBM is the position-based click model used for robustness checks.
	PBM = clickmodel.PBM
)

// Baselines (internal/baselines).
var (
	NewDLCM    = baselines.NewDLCM
	NewPRM     = baselines.NewPRM
	NewSetRank = baselines.NewSetRank
	NewSRGA    = baselines.NewSRGA
	NewMMR     = baselines.NewMMR
	NewDPP     = baselines.NewDPP
	NewDESA    = baselines.NewDESA
	NewSSD     = baselines.NewSSD
	NewAdpMMR  = baselines.NewAdpMMR
	NewPDGAN   = baselines.NewPDGAN
	// NewSeq2Slate is an extra pointer-network baseline (Bello et al.,
	// cited in the paper's introduction), not part of the paper's tables.
	NewSeq2Slate = baselines.NewSeq2Slate
)

// Experiments (internal/experiments): drivers for every paper table/figure.
type (
	// Options sizes an experiment run.
	Options = experiments.Options
	// Table is a formatted experiment result.
	Table = experiments.Table
	// Env is a prepared (dataset, ranker, λ) environment.
	Env = experiments.Env
	// RankedData couples a dataset with a fitted initial ranker.
	RankedData = experiments.RankedData
	// EvalResult holds per-request metric samples.
	EvalResult = experiments.EvalResult
	// RegretOptions sizes the Theorem 5.1 simulation.
	RegretOptions = experiments.RegretOptions
)

// Experiment drivers and helpers.
var (
	DefaultOptions       = experiments.DefaultOptions
	BuildRankedData      = experiments.BuildRankedData
	BuildEnv             = experiments.BuildEnv
	RunTable2            = experiments.RunTable2
	RunTable3            = experiments.RunTable3
	RunTable4            = experiments.RunTable4
	RunTable5            = experiments.RunTable5
	RunTable6            = experiments.RunTable6
	RunFig3              = experiments.RunFig3
	RunFig4              = experiments.RunFig4
	RunFig5              = experiments.RunFig5
	RunRegret            = experiments.RunRegret
	DefaultRegretOptions = experiments.DefaultRegretOptions
	RunDivFnAblation     = experiments.RunDivFnAblation
	RunRobustness        = experiments.RunRobustness
	RunExtended          = experiments.RunExtended
	RunPersonalization   = experiments.RunPersonalization
)

// Bandit analysis (internal/bandit).
type (
	// RegretCurve is the outcome of one Theorem 5.1 simulation.
	RegretCurve = bandit.RegretCurve
)

// Metrics (internal/metrics).
var (
	ClickAtK   = metrics.ClickAtK
	NDCGAtK    = metrics.NDCGAtK
	DivAtK     = metrics.DivAtK
	RevAtK     = metrics.RevAtK
	WelchTTest = metrics.WelchTTest
)
