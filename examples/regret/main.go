// Regret: an empirical check of Theorem 5.1. The linearized RAPID with UCB
// exploration is run against a DCM environment; its cumulative utility
// regret should track c·√n (the theorem's Õ(√n) bound), while the greedy
// (no exploration) and non-personalized ablations accumulate more regret.
package main

import (
	"fmt"

	rapid "repro"
)

func main() {
	opt := rapid.DefaultRegretOptions(42)
	opt.Rounds = 3000
	opt.Checkpoint = 200
	tbl, curves := rapid.RunRegret(opt)
	fmt.Println(tbl)

	// A tiny ASCII plot of the UCB curve vs the √n reference.
	ucb := curves[0]
	maxR := ucb.Points[len(ucb.Points)-1].CumRegret
	if ref := ucb.Points[len(ucb.Points)-1].SqrtRef; ref > maxR {
		maxR = ref
	}
	const width = 60
	fmt.Println("cumulative regret (·, UCB) vs c·√n reference (|):")
	for _, p := range ucb.Points {
		rPos := int(p.CumRegret / maxR * width)
		refPos := int(p.SqrtRef / maxR * width)
		line := make([]byte, width+1)
		for i := range line {
			line[i] = ' '
		}
		line[refPos] = '|'
		line[rPos] = '.'
		fmt.Printf("n=%5d %s\n", p.Round, line)
	}
	fmt.Printf("\nfitted exponent α=%.2f (theorem predicts ≈0.5)\n", ucb.Alpha)
}
