// Serving: wrap an untrained RAPID model in the hardened HTTP server and
// exercise the v1 scoring API — one single request through POST /v1/rerank
// and a two-request envelope through POST /v1/rerank:batch. Concurrent
// traffic coalesces into batched forward passes; here the point is the wire
// contract, so the demo stays single-threaded and deterministic.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	rapid "repro"
)

func main() {
	model := rapid.NewModel(rapid.DefaultModelConfig(2, 2, 3, 7))
	srv := rapid.NewServer(model,
		rapid.WithDeadline(50*time.Millisecond),
		rapid.WithBatching(16, 2*time.Millisecond),
		rapid.WithDataset("handmade"))

	// An in-process listener keeps the demo self-contained; srv.Handler()
	// mounts on any real net/http server the same way.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := rapid.RerankRequest{
		UserFeatures: []float64{0.3, 0.7},
		Items: []rapid.RerankItem{
			{ID: 1, Features: []float64{0.9, 0.1}, Cover: []float64{1, 0, 0}, InitScore: 0.9},
			{ID: 2, Features: []float64{0.8, 0.2}, Cover: []float64{1, 0, 0}, InitScore: 0.8},
			{ID: 3, Features: []float64{0.1, 0.9}, Cover: []float64{0, 1, 0}, InitScore: 0.5},
			{ID: 4, Features: []float64{0.5, 0.5}, Cover: []float64{0, 0, 1}, InitScore: 0.4},
		},
		TopicSequences: [][]rapid.SeqItemWire{
			{{Features: []float64{0.9, 0.1}}},
			{{Features: []float64{0.1, 0.9}}},
			{{Features: []float64{0.5, 0.5}}},
		},
	}

	var single rapid.RerankResponse
	post(ts.URL+"/v1/rerank", req, &single)
	fmt.Printf("single:   ranked %v (version %s, degraded %v)\n",
		single.Ranked, single.ModelVersion, single.Degraded)

	var batch rapid.RerankBatchResponse
	post(ts.URL+"/v1/rerank:batch", rapid.RerankBatchRequest{
		Requests: []rapid.RerankRequest{req, req},
	}, &batch)
	for i, r := range batch.Responses {
		fmt.Printf("batch[%d]: ranked %v (degraded %v)\n", i, r.Ranked, r.Degraded)
	}
}

func post(url string, in, out any) {
	body, err := json.Marshal(in)
	if err != nil {
		fail(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("%s: status %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
