// Quickstart: generate a small MovieLens-like universe, train an initial
// ranker and RAPID, and re-rank one request — the minimal end-to-end tour
// of the public API.
package main

import (
	"fmt"
	"os"

	rapid "repro"
)

func main() {
	opt := rapid.DefaultOptions()
	opt.Scale = 0.1 // keep the demo fast
	opt.Log = os.Stderr

	// 1. Dataset + initial ranker → initial lists.
	cfg := rapid.MovieLensLike(opt.Seed)
	rd, err := rapid.BuildRankedData(cfg, rapid.NewDIN(opt.Seed), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// 2. DCM click environment at λ=0.9 (mostly relevance-driven clicks).
	env := rapid.BuildEnv(rd, 0.9, opt)

	// 3. Train RAPID on the simulated click logs.
	model := rapid.NewModel(rapid.DefaultModelConfig(cfg.UserDim, cfg.ItemDim, cfg.Topics, opt.Seed))
	if err := model.Fit(env.Train); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// 4. Re-rank the first test request and inspect the result.
	inst := env.Test[0]
	fmt.Printf("user %d, initial list: %v\n", inst.User, inst.Items)
	ranked := rapid.Apply(model, inst)
	fmt.Printf("re-ranked:             %v\n", ranked)
	fmt.Printf("learned preference θ̂ (first 8 topics): ")
	for j, p := range model.Preference(inst) {
		if j >= 8 {
			break
		}
		fmt.Printf("%.2f ", p)
	}
	fmt.Println()

	// 5. Compare against the untouched initial ranking.
	for _, k := range []int{5, 10} {
		initExp := env.DCM.ExpectedClicks(inst.User, inst.Items)
		rapidExp := env.DCM.ExpectedClicks(inst.User, ranked)
		fmt.Printf("click@%d: init %.4f → RAPID %.4f\n",
			k, rapid.ClickAtK(initExp, k), rapid.ClickAtK(rapidExp, k))
	}
}
