// Newsfeed: the λ=0.5 scenario from the paper's Table II(a), where clicks
// depend on diversity as much as on relevance (news-feed style). Compares
// RAPID against a relevance-only transformer (PRM) and the diversity
// heuristics (MMR, DPP) on utility and topic coverage, per user segment.
package main

import (
	"fmt"
	"math"
	"os"

	rapid "repro"
)

func main() {
	opt := rapid.DefaultOptions()
	opt.Scale = 0.15
	opt.Log = os.Stderr

	cfg := rapid.TaobaoLike(opt.Seed)
	rd, err := rapid.BuildRankedData(cfg, rapid.NewDIN(opt.Seed), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// λ=0.5: half of every click is earned by novel topics.
	env := rapid.BuildEnv(rd, 0.5, opt)

	model := rapid.NewModel(rapid.DefaultModelConfig(cfg.UserDim, cfg.ItemDim, cfg.Topics, opt.Seed))
	prm := rapid.NewPRM(opt.Hidden, opt.Seed+1)
	rerankers := []rapid.Reranker{model, prm, rapid.NewMMR(), rapid.NewDPP()}
	for _, r := range rerankers {
		if t, ok := r.(rapid.Trainable); ok {
			if err := t.Fit(env.Train); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	fmt.Println("model      segment   click@10  div@10")
	for _, r := range rerankers {
		var clicks, divs [2]float64 // [diverse, focused]
		var counts [2]float64
		for _, inst := range env.Test {
			// Segment users by the entropy of their history distribution.
			pref := inst.HistoryPreference()
			ent := 0.0
			for _, p := range pref {
				if p > 0 {
					ent -= p * math.Log(p)
				}
			}
			seg := 0
			if ent < 0.75*math.Log(float64(inst.M)) {
				seg = 1
			}
			ranked := rapid.Apply(r, inst)
			exp := env.DCM.ExpectedClicks(inst.User, ranked)
			cover := make([][]float64, len(ranked))
			for i, v := range ranked {
				cover[i] = env.Data.Cover(v)
			}
			clicks[seg] += rapid.ClickAtK(exp, 10)
			divs[seg] += rapid.DivAtK(cover, inst.M, 10)
			counts[seg]++
		}
		for seg, name := range []string{"diverse", "focused"} {
			if counts[seg] == 0 {
				continue
			}
			fmt.Printf("%-10s %-9s %.4f    %.4f\n",
				r.Name(), name, clicks[seg]/counts[seg], divs[seg]/counts[seg])
		}
	}
	fmt.Println("\nRAPID should diversify the diverse segment harder than the focused one,")
	fmt.Println("while pure-relevance (PRM) under-diversifies and MMR/DPP over-diversify uniformly.")
}
