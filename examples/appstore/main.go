// Appstore: revenue-oriented re-ranking (the paper's Table III setting).
// Items carry bid prices; the platform metric is rev@k = Σ bid·click. The
// example trains RAPID on an App-Store-like universe and reports revenue
// against the platform's initial ranking and PRM.
package main

import (
	"fmt"
	"os"

	rapid "repro"
)

func main() {
	opt := rapid.DefaultOptions()
	opt.Scale = 0.15
	opt.Log = os.Stderr

	cfg := rapid.AppStoreLike(opt.Seed)
	rd, err := rapid.BuildRankedData(cfg, rapid.NewDIN(opt.Seed), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	env := rapid.BuildEnv(rd, 0.8, opt)

	model := rapid.NewModel(rapid.DefaultModelConfig(cfg.UserDim, cfg.ItemDim, cfg.Topics, opt.Seed))
	prm := rapid.NewPRM(opt.Hidden, opt.Seed+1)
	for _, r := range []rapid.Reranker{model, prm} {
		if t, ok := r.(rapid.Trainable); ok {
			if err := t.Fit(env.Train); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	type row struct {
		name           string
		rev5, rev10    float64
		click10, div10 float64
	}
	var rows []row
	score := func(name string, order func(inst *rapid.Instance) []int) row {
		var r row
		r.name = name
		for _, inst := range env.Test {
			ranked := order(inst)
			exp := env.DCM.ExpectedClicks(inst.User, ranked)
			bids := make([]float64, len(ranked))
			cover := make([][]float64, len(ranked))
			for i, v := range ranked {
				bids[i] = env.Data.Bid(v)
				cover[i] = env.Data.Cover(v)
			}
			r.rev5 += rapid.RevAtK(exp, bids, 5)
			r.rev10 += rapid.RevAtK(exp, bids, 10)
			r.click10 += rapid.ClickAtK(exp, 10)
			r.div10 += rapid.DivAtK(cover, inst.M, 10)
		}
		n := float64(len(env.Test))
		r.rev5 /= n
		r.rev10 /= n
		r.click10 /= n
		r.div10 /= n
		return r
	}
	rows = append(rows, score("Init", func(inst *rapid.Instance) []int { return inst.Items }))
	rows = append(rows, score("PRM", func(inst *rapid.Instance) []int { return rapid.Apply(prm, inst) }))
	rows = append(rows, score("RAPID", func(inst *rapid.Instance) []int { return rapid.Apply(model, inst) }))

	fmt.Println("model  rev@5    rev@10   click@10  div@10")
	for _, r := range rows {
		fmt.Printf("%-6s %.4f   %.4f   %.4f    %.4f\n", r.name, r.rev5, r.rev10, r.click10, r.div10)
	}
	base := rows[0]
	last := rows[len(rows)-1]
	fmt.Printf("\nRAPID revenue lift over the platform ranking: %+.2f%% (rev@10)\n",
		(last.rev10-base.rev10)/base.rev10*100)
}
